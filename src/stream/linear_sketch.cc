#include "src/stream/linear_sketch.h"

// The MakeEmptySketch factory is the one place that names every concrete
// LinearSketch, so the wire-format dispatch stays in the library instead
// of being re-written (and drifting) in each tool.
#include "src/apps/moment_estimation.h"
#include "src/core/ako_sampler.h"
#include "src/core/fis_l0_sampler.h"
#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/duplicates/duplicates.h"
#include "src/duplicates/positive_finder.h"
#include "src/heavy/heavy_hitters.h"
#include "src/norm/l0_norm.h"
#include "src/norm/lp_norm.h"
#include "src/recovery/one_sparse.h"
#include "src/recovery/sparse_recovery.h"
#include "src/sketch/ams_f2.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/dyadic.h"
#include "src/sketch/stable_sketch.h"
#include "src/util/check.h"

namespace lps {

namespace {

// "LS" in ASCII; 16 bits at the front of every serialized sketch.
constexpr uint64_t kMagic = 0x4C53;

}  // namespace

const char* SketchKindName(SketchKind kind) {
  switch (kind) {
    case SketchKind::kCountSketch: return "count_sketch";
    case SketchKind::kCountMin: return "count_min";
    case SketchKind::kAmsF2: return "ams_f2";
    case SketchKind::kStableSketch: return "stable_sketch";
    case SketchKind::kDyadicCountMin: return "dyadic_count_min";
    case SketchKind::kDyadicCountSketch: return "dyadic_count_sketch";
    case SketchKind::kL0Estimator: return "l0_estimator";
    case SketchKind::kLpNormEstimator: return "lp_norm_estimator";
    case SketchKind::kOneSparse: return "one_sparse";
    case SketchKind::kSparseRecovery: return "sparse_recovery";
    case SketchKind::kLpSampler: return "lp_sampler";
    case SketchKind::kL0Sampler: return "l0_sampler";
    case SketchKind::kFisL0Sampler: return "fis_l0_sampler";
    case SketchKind::kAkoSampler: return "ako_sampler";
    case SketchKind::kCsHeavyHitters: return "cs_heavy_hitters";
    case SketchKind::kCmHeavyHitters: return "cm_heavy_hitters";
    case SketchKind::kDyadicHeavyHitters: return "dyadic_heavy_hitters";
    case SketchKind::kDuplicateFinder: return "duplicate_finder";
    case SketchKind::kSparseDuplicateFinder: return "sparse_duplicate_finder";
    case SketchKind::kPositiveFinder: return "positive_finder";
    case SketchKind::kMomentEstimator: return "moment_estimator";
  }
  return "unknown";
}

void WriteSketchHeader(BitWriter* writer, SketchKind kind) {
  writer->WriteBits(kMagic, 16);
  writer->WriteBits(static_cast<uint64_t>(kind), 8);
  writer->WriteBits(kSketchFormatVersion, 8);
}

uint32_t ReadSketchHeader(BitReader* reader, SketchKind expected) {
  LPS_CHECK(reader->ReadBits(16) == kMagic);
  LPS_CHECK(reader->ReadBits(8) == static_cast<uint64_t>(expected));
  const uint32_t version = static_cast<uint32_t>(reader->ReadBits(8));
  LPS_CHECK(version >= 1 && version <= kSketchFormatVersion);
  return version;
}

SketchKind PeekSketchKind(BitReader* reader) {
  LPS_CHECK(reader->ReadBits(16) == kMagic);
  return static_cast<SketchKind>(reader->ReadBits(8));
}

std::unique_ptr<LinearSketch> MakeEmptySketch(SketchKind kind) {
  switch (kind) {
    case SketchKind::kCountSketch:
      return std::make_unique<sketch::CountSketch>(1, 1, 0);
    case SketchKind::kCountMin:
      return std::make_unique<sketch::CountMin>(1, 1, 0);
    case SketchKind::kAmsF2:
      return std::make_unique<sketch::AmsF2>(1, 1, 0);
    case SketchKind::kStableSketch:
      return std::make_unique<sketch::StableSketch>(1.0, 1, 0);
    case SketchKind::kDyadicCountMin:
      return std::make_unique<sketch::DyadicCountMin>(1, 1, 1, 0);
    case SketchKind::kDyadicCountSketch:
      return std::make_unique<sketch::DyadicCountSketch>(1, 1, 1, 0);
    case SketchKind::kL0Estimator:
      return std::make_unique<norm::L0Estimator>(1, 1, 0);
    case SketchKind::kLpNormEstimator:
      return std::make_unique<norm::LpNormEstimator>(1.0, 1, 0);
    case SketchKind::kOneSparse:
      return std::make_unique<recovery::OneSparse>(1, 0);
    case SketchKind::kSparseRecovery:
      return std::make_unique<recovery::SparseRecovery>(1, 1, 0);
    case SketchKind::kLpSampler: {
      core::LpSamplerParams params;
      params.n = 1;
      params.repetitions = 1;
      return std::make_unique<core::LpSampler>(params);
    }
    case SketchKind::kL0Sampler:
      return std::make_unique<core::L0Sampler>(
          core::L0SamplerParams{1, 0.25, 0, 0, false});
    case SketchKind::kFisL0Sampler:
      return std::make_unique<core::FisL0Sampler>(1, 0);
    case SketchKind::kAkoSampler: {
      core::LpSamplerParams params;
      params.n = 1;
      params.repetitions = 1;
      return std::make_unique<core::AkoSampler>(params);
    }
    case SketchKind::kCsHeavyHitters: {
      heavy::CsHeavyHitters::Params params;
      params.n = 1;
      return std::make_unique<heavy::CsHeavyHitters>(params);
    }
    case SketchKind::kCmHeavyHitters: {
      heavy::CmHeavyHitters::Params params;
      params.n = 1;
      return std::make_unique<heavy::CmHeavyHitters>(params);
    }
    case SketchKind::kDyadicHeavyHitters:
      return std::make_unique<heavy::DyadicHeavyHitters>(1, 0.1, 0);
    case SketchKind::kDuplicateFinder:
      return std::make_unique<duplicates::DuplicateFinder>(
          duplicates::DuplicateFinder::Params{1, 0.25, 1, 0});
    case SketchKind::kSparseDuplicateFinder: {
      duplicates::SparseDuplicateFinder::Params params;
      params.n = 1;
      params.s = 1;
      params.repetitions = 1;
      return std::make_unique<duplicates::SparseDuplicateFinder>(params);
    }
    case SketchKind::kPositiveFinder: {
      duplicates::PositiveFinder::Params params;
      params.n = 1;
      params.repetitions = 1;
      return std::make_unique<duplicates::PositiveFinder>(params);
    }
    case SketchKind::kMomentEstimator: {
      apps::MomentEstimator::Params params;
      params.n = 1;
      params.samples = 1;
      return std::make_unique<apps::MomentEstimator>(params);
    }
  }
  return nullptr;
}

std::unique_ptr<LinearSketch> DeserializeAnySketch(BitReader* reader) {
  const SketchKind kind = PeekSketchKind(reader);
  auto sketch = MakeEmptySketch(kind);
  if (sketch == nullptr) return nullptr;
  reader->Rewind();
  sketch->Deserialize(reader);
  return sketch;
}

}  // namespace lps
