#include "src/stream/stream_driver.h"

#include <algorithm>

#include "src/util/check.h"

namespace lps::stream {

StreamDriver::StreamDriver(size_t batch_size) : batch_size_(batch_size) {
  LPS_CHECK(batch_size >= 1);
  buffer_.reserve(batch_size);
}

StreamDriver& StreamDriver::AddSink(std::string name, BatchFn fn) {
  sinks_.emplace_back(std::move(name), std::move(fn));
  return *this;
}

size_t StreamDriver::Drive(const Update* updates, size_t count) {
  for (size_t offset = 0; offset < count; offset += batch_size_) {
    const size_t chunk = std::min(batch_size_, count - offset);
    for (auto& [name, fn] : sinks_) {
      fn(updates + offset, chunk);
    }
    ++batches_driven_;
  }
  updates_driven_ += count;
  return count;
}

size_t StreamDriver::Drive(const UpdateStream& stream) {
  return Drive(stream.data(), stream.size());
}

void StreamDriver::Push(Update u) {
  buffer_.push_back(u);
  if (buffer_.size() >= batch_size_) Flush();
}

void StreamDriver::Flush() {
  if (buffer_.empty()) return;
  Drive(buffer_.data(), buffer_.size());
  buffer_.clear();
}

}  // namespace lps::stream
