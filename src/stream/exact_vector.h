// Exact reference vector: the ground truth every sketch is validated
// against. Maintains x in Z^n explicitly and offers exact norms, supports,
// Lp sampling distributions and heavy-hitter sets.
#pragma once

#include <cstdint>
#include <vector>

#include "src/stream/update.h"

namespace lps::stream {

class ExactVector {
 public:
  explicit ExactVector(uint64_t n) : x_(n, 0) {}

  void Apply(const Update& u);
  void Apply(const UpdateStream& stream);

  uint64_t n() const { return x_.size(); }
  int64_t operator[](uint64_t i) const { return x_[i]; }
  const std::vector<int64_t>& data() const { return x_; }

  /// ||x||_p for p > 0.
  double NormP(double p) const;

  /// ||x||_p^p for p > 0.
  double NormPToP(double p) const;

  /// Number of non-zero coordinates (L0).
  uint64_t L0() const;

  /// Indices of non-zero coordinates, ascending.
  std::vector<uint64_t> Support() const;

  /// ||x||_1^+ = sum of positive coordinates; ||x||_1^- = -sum of negatives
  /// (Section 3, Theorem 4).
  int64_t PositiveMass() const;
  int64_t NegativeMass() const;

  /// Sum of all coordinates.
  int64_t Total() const;

  /// Exact Lp distribution: probability of index i, i.e. |x_i|^p / ||x||_p^p
  /// (Definition 1). For p == 0, uniform over the support.
  std::vector<double> LpDistribution(double p) const;

  /// Err_2^m(x): L2 distance from x to its best m-sparse approximation,
  /// i.e. the L2 norm of x with the m largest-magnitude entries removed.
  double ErrM2(uint64_t m) const;

  /// Exact phi-heavy-hitter candidates: indices with |x_i| >= phi*||x||_p.
  std::vector<uint64_t> HeavyHitters(double p, double phi) const;

 private:
  std::vector<int64_t> x_;
};

}  // namespace lps::stream
