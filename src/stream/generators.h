// Workload generators for every experiment family in DESIGN.md. All are
// deterministic in their seed. Streams are integer update streams in the
// paper's model; letter streams (for the duplicates problems of Section 3)
// are sequences over the alphabet [n].
#pragma once

#include <cstdint>
#include <vector>

#include "src/stream/update.h"

namespace lps::stream {

/// A letter stream for the duplicates problem: `letters[t]` in [0, n).
using LetterStream = std::vector<uint64_t>;

/// General turnstile stream: `num_updates` updates at uniform coordinates
/// with uniform deltas in [-max_abs, max_abs] \ {0}.
UpdateStream UniformTurnstile(uint64_t n, uint64_t num_updates,
                              int64_t max_abs, uint64_t seed);

/// Turnstile stream with temporal locality: every `epoch` updates a fresh
/// working set of `hot_keys` coordinates is drawn, and updates within the
/// epoch hit only that set (uniform deltas in [-max_abs, max_abs] \ {0}).
/// This is the monitoring-style workload where consecutive checkpoints of
/// a sketch differ in few counters — the regime the persist/ delta codec
/// is benchmarked on (checkpoints of a uniform stream carry fresh entropy
/// in nearly every counter and are near-incompressible by design).
UpdateStream HotSetTurnstile(uint64_t n, uint64_t num_updates,
                             uint64_t hot_keys, uint64_t epoch,
                             int64_t max_abs, uint64_t seed);

/// Sets x_i proportional to a Zipf(alpha) law over a random permutation of
/// coordinates, scaled so the largest magnitude is `scale`, with random
/// signs if `signed_values`. Delivered as single-coordinate updates in
/// random order.
UpdateStream ZipfianVector(uint64_t n, double alpha, int64_t scale,
                           bool signed_values, uint64_t seed);

/// Random vector with exactly k non-zero coordinates, each +1 or -1
/// (the hard instances of Theorem 8).
UpdateStream SignVector(uint64_t n, uint64_t k, uint64_t seed);

/// Random vector with exactly k non-zero coordinates with uniform values in
/// [1, max_abs] times a random sign, delivered as possibly-split updates
/// (each coordinate's value may arrive over several updates).
UpdateStream SparseVector(uint64_t n, uint64_t k, int64_t max_abs,
                          uint64_t seed);

/// Insert-then-delete churn: `churn` coordinates receive an insert and a
/// matching delete; `survivors` coordinates keep value +1. Stresses
/// L0 samplers and sparse recovery (the final vector is `survivors`-sparse
/// but the stream touches far more coordinates).
UpdateStream InsertDeleteChurn(uint64_t n, uint64_t churn, uint64_t survivors,
                               uint64_t seed);

/// Planted heavy hitters: `num_heavy` coordinates get magnitude `heavy_value`
/// (random signs if signed_values); `noise_support` others get magnitude 1.
UpdateStream PlantedHeavyHitters(uint64_t n, uint64_t num_heavy,
                                 int64_t heavy_value, uint64_t noise_support,
                                 bool signed_values, uint64_t seed);

/// Letter stream of length n + extras over alphabet [n]: a random
/// permutation of [n] with `extras` additional letters re-drawn uniformly
/// and inserted at random positions. extras >= 1 guarantees duplicates;
/// extras == 0 gives a duplicate-free stream.
LetterStream DuplicateStream(uint64_t n, uint64_t extras, uint64_t seed);

/// Letter stream of length n - s over alphabet [n] with `num_duplicates`
/// letters appearing exactly twice (Theorem 4 workloads). Requires
/// 2 * num_duplicates <= n - s.
LetterStream ShortStreamWithDuplicates(uint64_t n, uint64_t s,
                                       uint64_t num_duplicates, uint64_t seed);

/// Converts a letter stream into the update stream of Theorem 3's reduction:
/// first (i, -1) for every i in [0, n), then (letter, +1) per letter.
UpdateStream DuplicatesReduction(uint64_t n, const LetterStream& letters);

}  // namespace lps::stream
