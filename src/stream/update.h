// The update-stream model of the paper (Section 1, Notation): a stream of
// tuples (i, u) with i in [n] and integer u, implicitly defining x in Z^n
// where each update adds u to x_i. In the strict turnstile model all
// coordinates are non-negative at the end of the stream; in the general
// model they may be arbitrary.
#pragma once

#include <cstdint>
#include <vector>

namespace lps::stream {

struct Update {
  uint64_t index;  ///< coordinate in [0, n)
  int64_t delta;   ///< integer update value u
};

using UpdateStream = std::vector<Update>;

}  // namespace lps::stream
