// The update-stream model of the paper (Section 1, Notation): a stream of
// tuples (i, u) with i in [n] and integer u, implicitly defining x in Z^n
// where each update adds u to x_i. In the strict turnstile model all
// coordinates are non-negative at the end of the stream; in the general
// model they may be arbitrary.
#pragma once

#include <cstdint>
#include <vector>

namespace lps::stream {

struct Update {
  uint64_t index;  ///< coordinate in [0, n)
  int64_t delta;   ///< integer update value u
};

using UpdateStream = std::vector<Update>;

/// An update with a real-valued delta: what the sketches below the sampler
/// layer actually ingest, because the Lp sampler feeds them the *scaled*
/// vector z_i = x_i / t_i^{1/p}. Batch entry points accept either flavor.
struct ScaledUpdate {
  uint64_t index;
  double delta;
};

}  // namespace lps::stream
