// The uniform contract every linear structure in this library implements.
//
// All of the paper's machinery — count-sketch, the AMS and stable norm
// sketches, dyadic trees, sparse recovery, the Lp/L0 samplers, heavy
// hitters, and the duplicates finders built on them — maintains a linear
// function of the stream vector x. Linearity is what the Section 4
// reductions exploit ("send the memory contents" to a second party who
// keeps streaming), and it is what makes the structures production-scale:
// shards can ingest disjoint sub-streams independently and their sketches
// add coordinate-wise. The LinearSketch interface makes that deployment
// mode a first-class API:
//
//   - Update / UpdateBatch   ingest stream updates (batch path is the
//                            fast path; Update delegates to a batch of 1);
//   - Merge                  coordinate-wise addition of a replica built
//                            with identical parameters and seeds —
//                            CHECK-fails on any mismatch;
//   - Serialize/Deserialize  *full* reconstructible state: a versioned
//                            header, the construction parameters and seed,
//                            then the counters. Deserialize reconfigures
//                            the target object to the serialized
//                            parameters, so a fresh instance (any params
//                            of the right type) restores exactly;
//   - Reset                  zero the counters, keep seeds and
//                            allocations (cheap reuse across trials);
//   - SpaceBits              the paper-model space accounting.
//
// Structures that are not linear maps of x do not implement the interface:
// reservoir samplers (insertion-order dependent), the position-sampling
// strategy of OversampledDuplicateFinder, and the two-pass L0 sampler
// (state is split across passes).
#pragma once

#include <cstdint>
#include <memory>

#include "src/stream/update.h"
#include "src/util/serialize.h"

namespace lps {

/// Type tag stored in every serialized sketch header. Values are part of
/// the wire format: never renumber, only append.
enum class SketchKind : uint32_t {
  kCountSketch = 1,
  kCountMin = 2,
  kAmsF2 = 3,
  kStableSketch = 4,
  kDyadicCountMin = 5,
  kDyadicCountSketch = 6,
  kL0Estimator = 7,
  kLpNormEstimator = 8,
  kOneSparse = 9,
  kSparseRecovery = 10,
  kLpSampler = 11,
  kL0Sampler = 12,
  kFisL0Sampler = 13,
  kAkoSampler = 14,
  kCsHeavyHitters = 15,
  kCmHeavyHitters = 16,
  kDyadicHeavyHitters = 17,
  kDuplicateFinder = 18,
  kSparseDuplicateFinder = 19,
  kPositiveFinder = 20,
  kMomentEstimator = 21,
};

/// Human-readable name of a kind (for tools and error messages).
const char* SketchKindName(SketchKind kind);

/// Current version of the serialized wire format. Bump when a structure's
/// layout changes; Deserialize accepts versions <= current and CHECK-fails
/// on newer ones (state written by a future library revision).
/// v2: the samplers and heavy-hitter classes grew co-updated dyadic
/// candidate generators (extra params + counters); their Deserialize
/// rejects v1 state, whose layout lacks those fields.
inline constexpr uint32_t kSketchFormatVersion = 2;

class LinearSketch {
 public:
  virtual ~LinearSketch() = default;

  /// Uniform single-update entry point; concrete classes keep their own
  /// typed Update fast paths alongside (which shadow this one — same
  /// semantics, both funnel into UpdateBatch).
  void Update(uint64_t i, int64_t delta) {
    const stream::Update u{i, delta};
    UpdateBatch(&u, 1);
  }

  /// Batched ingestion in stream order — the hot path.
  virtual void UpdateBatch(const stream::Update* updates, size_t count) = 0;

  /// Coordinate-wise addition of `other`'s state into this one. `other`
  /// must be the same concrete type, constructed with identical parameters
  /// and seeds (a shard replica); any mismatch CHECK-fails.
  virtual void Merge(const LinearSketch& other) = 0;

  /// Coordinate-wise SUBTRACTION: folds -1 x `other`'s counters into this
  /// one, under the same same-type/same-params/same-seeds contract as
  /// Merge (any mismatch CHECK-fails). Linearity gives subtraction for
  /// free, and subtraction is what makes sliding windows cheap: if this
  /// sketch holds the prefix stream x[0..now) and `other` a checkpointed
  /// prefix x[0..t), then after MergeNegated(other) this sketch holds
  /// exactly the window x[t..now) — without re-ingesting a single update
  /// (stream::WindowManager builds on this). Exactness matches Merge's
  /// taxonomy: bit-exact for integer-valued-double and GF(2^61-1) counter
  /// families, FP-reassociation-exact for genuinely real-scaled ones. The
  /// duplicates finders cancel their duplicated (i,-1) initialization and
  /// re-feed one copy, so the difference is again a well-formed finder
  /// over the subtracted letter multiset.
  virtual void MergeNegated(const LinearSketch& other) = 0;

  /// Full reconstructible state: versioned header, parameters, seed,
  /// counters.
  virtual void Serialize(BitWriter* writer) const = 0;

  /// Restores serialized state, reconfiguring this object to the
  /// serialized parameters. CHECK-fails on a kind mismatch or a version
  /// newer than this library writes.
  virtual void Deserialize(BitReader* reader) = 0;

  /// Zeroes the counters while keeping seeds, parameters, and
  /// allocations — after Reset the object is indistinguishable from a
  /// freshly constructed one, without paying reconstruction.
  virtual void Reset() = 0;

  /// Paper-model space at 64 bits per counter.
  virtual size_t SpaceBits() const = 0;

  /// The type tag this object serializes under.
  virtual SketchKind kind() const = 0;
};

/// Writes the standard header: 16-bit magic, 8-bit kind, 8-bit version.
void WriteSketchHeader(BitWriter* writer, SketchKind kind);

/// Reads and validates a header written by WriteSketchHeader. CHECK-fails
/// on bad magic, a kind other than `expected`, or a version >
/// kSketchFormatVersion. Returns the version for layout dispatch.
uint32_t ReadSketchHeader(BitReader* reader, SketchKind expected);

/// Reads just the magic and kind tag (advancing `reader` by 24 bits) —
/// used by tools to dispatch on the type of a saved sketch before
/// constructing one; pass a throwaway reader and Deserialize through a
/// fresh one. CHECK-fails on bad magic.
SketchKind PeekSketchKind(BitReader* reader);

/// Constructs an empty instance of the given kind with throwaway
/// parameters — the canonical Deserialize target, since Deserialize
/// reconfigures the object to the serialized parameters. Covers every
/// SketchKind; returns nullptr for a kind value outside the enum (a
/// corrupt or future wire stream).
std::unique_ptr<LinearSketch> MakeEmptySketch(SketchKind kind);

/// Reads one serialized sketch of any kind: peeks the kind tag,
/// constructs the matching concrete type, rewinds, and Deserializes.
/// `reader` must hold the sketch starting at bit 0 (the save-file layout;
/// Rewind() is used to re-read the header). CHECK-fails on bad magic or a
/// version newer than this library writes; returns nullptr on an unknown
/// kind tag. This is the dispatch the lps_cli load/merge subcommands use.
std::unique_ptr<LinearSketch> DeserializeAnySketch(BitReader* reader);

}  // namespace lps
