#include "src/stream/trace.h"

#include <sstream>
#include <string>

namespace lps::stream {

void WriteTrace(std::ostream& out, uint64_t n, const UpdateStream& updates) {
  out << "n " << n << "\n";
  for (const auto& u : updates) {
    out << "u " << u.index << " " << u.delta << "\n";
  }
}

void WriteLetterTrace(std::ostream& out, uint64_t n,
                      const LetterStream& letters) {
  out << "n " << n << "\n";
  for (uint64_t letter : letters) {
    out << "l " << letter << "\n";
  }
}

Result<Trace> ReadTrace(std::istream& in) {
  Trace trace;
  bool have_header = false;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    auto fail = [&](const char* what) {
      return Status::InvalidArgument(what + std::string(" at line ") +
                                     std::to_string(line_number));
    };
    if (tag == "n") {
      if (have_header) return fail("duplicate header");
      if (!(fields >> trace.n) || trace.n == 0) return fail("bad header");
      have_header = true;
    } else if (tag == "u") {
      if (!have_header) return fail("update before header");
      Update u{};
      if (!(fields >> u.index >> u.delta)) return fail("bad update");
      if (u.index >= trace.n) return fail("index out of range");
      trace.updates.push_back(u);
    } else if (tag == "l") {
      if (!have_header) return fail("letter before header");
      uint64_t letter = 0;
      if (!(fields >> letter)) return fail("bad letter");
      if (letter >= trace.n) return fail("letter out of range");
      trace.updates.push_back({letter, 1});
    } else {
      return fail("unknown record tag");
    }
  }
  if (!have_header) {
    return Status::InvalidArgument("missing 'n <size>' header");
  }
  return trace;
}

}  // namespace lps::stream
