#include "src/stream/window_manager.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/serialize.h"

namespace lps::stream {

namespace {

// record_kind tag for window delta records in the checkpoint store.
constexpr uint8_t kWindowDeltaRecord = 1;

// Spilled record payload: [mode:u8][raw_bits:u64 LE][compressed bytes].
std::vector<uint8_t> PackDelta(const persist::EncodedDelta& delta) {
  std::vector<uint8_t> payload;
  payload.reserve(9 + delta.bytes.size());
  payload.push_back(static_cast<uint8_t>(delta.mode));
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<uint8_t>(delta.raw_bits >> (8 * i)));
  }
  payload.insert(payload.end(), delta.bytes.begin(), delta.bytes.end());
  return payload;
}

bool UnpackDelta(const std::vector<uint8_t>& payload,
                 persist::EncodedDelta* delta) {
  if (payload.size() < 9) return false;
  delta->mode = static_cast<persist::DeltaMode>(payload[0]);
  delta->raw_bits = 0;
  for (int i = 0; i < 8; ++i) {
    delta->raw_bits |= static_cast<uint64_t>(payload[1 + i]) << (8 * i);
  }
  delta->bytes.assign(payload.begin() + 9, payload.end());
  return true;
}

}  // namespace

WindowManager::WindowManager(LinearSketch* live, Options options)
    : live_(live),
      interval_(options.checkpoint_interval),
      max_checkpoints_(options.max_checkpoints) {
  LPS_CHECK(live_ != nullptr);
  LPS_CHECK(interval_ >= 1);
  next_seal_ = interval_;
  // The attach-time state is the position-0 prefix. For a freshly
  // constructed sketch the snapshot is all-zero counters (subtracting it
  // is the identity); for the duplicates finders it carries their
  // (i, -1) initialization, which MergeNegated cancels and re-feeds.
  Seal();
}

void WindowManager::Seal() {
  if (!ring_.empty() && ring_.back().count == updates_seen_) return;
  Checkpoint cp;
  cp.count = updates_seen_;
  BitWriter writer;
  live_->Serialize(&writer);
  cp.words = writer.words();
  cp.bits = writer.bit_count();
  ring_.push_back(std::move(cp));
  Trim();
}

void WindowManager::AttachSpill(SpillOptions spill) {
  LPS_CHECK(spill.store != nullptr);
  LPS_CHECK(!spill.stream_key.empty());
  LPS_CHECK(spill.resident_checkpoints >= 1);
  LPS_CHECK(spill.keyframe_interval >= 1);
  spill_ = std::move(spill);
  Trim();
}

void WindowManager::Trim() {
  if (spill_.store != nullptr) {
    while (ring_.size() > spill_.resident_checkpoints &&
           spill_.store != nullptr) {
      SpillOldest();
    }
    if (max_checkpoints_ > 0) {
      // Retention bounds resident + spilled together; the oldest spilled
      // entries become unreachable first (the append-only store keeps
      // their records, but no window can select them).
      while (!spilled_.empty() &&
             ring_.size() + spilled_.size() > max_checkpoints_) {
        spilled_.pop_front();
      }
    }
  }
  if (max_checkpoints_ > 0) {
    while (ring_.size() > max_checkpoints_) ring_.pop_front();
  }
}

void WindowManager::SpillOldest() {
  Checkpoint& cp = ring_.front();
  // First record from this manager (or every keyframe_interval-th) is a
  // keyframe: records appended by earlier processes under the same key
  // are not part of our chain, so we must never delta against them.
  const bool keyframe = spill_records_ % spill_.keyframe_interval == 0 ||
                        last_spilled_words_.empty();
  const persist::EncodedDelta delta =
      keyframe ? persist::EncodeDelta(persist::DeltaMode::kKeyframe, cp.words,
                                      cp.bits, {}, 0)
               : persist::EncodeBestDelta(cp.words, cp.bits,
                                          last_spilled_words_,
                                          last_spilled_bits_);
  const std::vector<uint8_t> payload = PackDelta(delta);
  const size_t record_index = spill_.store->RecordCount(spill_.stream_key);
  const Status st = spill_.store->Append(spill_.stream_key,
                                         kWindowDeltaRecord, payload.data(),
                                         payload.size());
  if (!st.ok()) {
    // Disk trouble: keep the checkpoint resident and stop spilling. The
    // window capability degrades to the all-RAM ring, never to data loss.
    last_spill_error_ = st;
    spill_.store = nullptr;
    return;
  }
  spilled_.push_back({cp.count, record_index, keyframe});
  spilled_bytes_ += payload.size();
  last_spilled_words_ = std::move(cp.words);
  last_spilled_bits_ = cp.bits;
  ++spill_records_;
  ring_.pop_front();
}

WindowManager::Checkpoint WindowManager::Rehydrate(size_t meta_index) const {
  LPS_CHECK(meta_index < spilled_.size());
  // Walk back to the chain anchor: the nearest keyframe at or before the
  // target, or the cached plaintext if it lies on the chain.
  size_t anchor = meta_index;
  while (!spilled_[anchor].keyframe) {
    LPS_CHECK(anchor > 0);
    --anchor;
  }
  Checkpoint state;
  size_t next = anchor;
  if (cache_valid_) {
    for (size_t i = meta_index + 1; i-- > anchor;) {
      if (spilled_[i].count == cache_.count) {
        state = cache_;
        next = i + 1;
        break;
      }
    }
  }
  for (size_t i = next; i <= meta_index; ++i) {
    const auto payload =
        spill_.store->ReadRecord(spill_.stream_key, spilled_[i].record_index);
    LPS_CHECK(payload.ok());
    persist::EncodedDelta delta;
    LPS_CHECK(UnpackDelta(payload.value(), &delta));
    std::vector<uint64_t> words;
    size_t bits = 0;
    LPS_CHECK(persist::DecodeDelta(delta, state.words, state.bits, &words,
                                   &bits));
    state.words = std::move(words);
    state.bits = bits;
    state.count = spilled_[i].count;
  }
  cache_ = state;
  cache_valid_ = true;
  return state;
}

void WindowManager::PushBatch(const Update* updates, size_t count) {
  size_t done = 0;
  while (done < count) {
    // Stop the chunk at the next seal boundary so checkpoint positions
    // are exact multiples of the interval, independent of how callers
    // chunk their batches.
    const uint64_t room = next_seal_ - updates_seen_;
    const size_t take =
        static_cast<size_t>(std::min<uint64_t>(room, count - done));
    live_->UpdateBatch(updates + done, take);
    updates_seen_ += take;
    done += take;
    if (updates_seen_ == next_seal_) {
      Seal();
      next_seal_ += interval_;
    }
  }
}

size_t WindowManager::Drive(const UpdateStream& stream) {
  PushBatch(stream.data(), stream.size());
  return stream.size();
}

void WindowManager::SealEpoch(uint64_t count) {
  updates_seen_ += count;
  Seal();
  // Re-anchor the automatic schedule: the next owned-ingestion seal comes
  // one full interval after this epoch boundary.
  next_seal_ = updates_seen_ + interval_;
}

WindowManager::Window WindowManager::WindowSketch(uint64_t w) const {
  LPS_CHECK(!ring_.empty());
  const uint64_t want_start = w >= updates_seen_ ? 0 : updates_seen_ - w;

  // Newest checkpoint at or before the wanted start — the window start
  // rounds DOWN so the materialized window always contains the last w
  // updates. A start behind the resident ring falls through to the
  // spilled history (rehydrated through the codec); reaching behind
  // everything retained clamps to the oldest materializable snapshot.
  Checkpoint rehydrated;
  const Checkpoint* expired_ptr = nullptr;
  if (!spilled_.empty() && want_start < ring_.front().count) {
    const auto past = std::upper_bound(
        spilled_.begin(), spilled_.end(), want_start,
        [](uint64_t value, const SpilledCheckpoint& cp) {
          return value < cp.count;
        });
    const size_t meta_index =
        past == spilled_.begin()
            ? 0
            : static_cast<size_t>(std::prev(past) - spilled_.begin());
    rehydrated = Rehydrate(meta_index);
    expired_ptr = &rehydrated;
  } else {
    const auto past = std::upper_bound(
        ring_.begin(), ring_.end(), want_start,
        [](uint64_t value, const Checkpoint& cp) { return value < cp.count; });
    expired_ptr = past == ring_.begin() ? &*past : &*std::prev(past);
  }
  const Checkpoint& expired = *expired_ptr;

  // S(now): round-trip the live sketch through its own wire format — the
  // cheapest faithful copy the LinearSketch contract offers, and O(sketch
  // size) like everything else here.
  BitWriter now;
  live_->Serialize(&now);
  BitReader now_reader(now);
  Window out;
  out.sketch = DeserializeAnySketch(&now_reader);
  LPS_CHECK(out.sketch != nullptr);

  // Minus S(expired): fold -1 x the checkpointed prefix counters in.
  BitReader expired_reader(expired.words, expired.bits);
  auto expired_sketch = DeserializeAnySketch(&expired_reader);
  LPS_CHECK(expired_sketch != nullptr);
  out.sketch->MergeNegated(*expired_sketch);

  out.start = expired.count;
  out.length = updates_seen_ - expired.count;
  return out;
}

size_t WindowManager::CheckpointBytes() const {
  size_t bytes = 0;
  for (const Checkpoint& cp : ring_) bytes += cp.words.size() * 8;
  return bytes;
}

}  // namespace lps::stream
