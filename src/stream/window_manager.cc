#include "src/stream/window_manager.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/serialize.h"

namespace lps::stream {

WindowManager::WindowManager(LinearSketch* live, Options options)
    : live_(live),
      interval_(options.checkpoint_interval),
      max_checkpoints_(options.max_checkpoints) {
  LPS_CHECK(live_ != nullptr);
  LPS_CHECK(interval_ >= 1);
  next_seal_ = interval_;
  // The attach-time state is the position-0 prefix. For a freshly
  // constructed sketch the snapshot is all-zero counters (subtracting it
  // is the identity); for the duplicates finders it carries their
  // (i, -1) initialization, which MergeNegated cancels and re-feeds.
  Seal();
}

void WindowManager::Seal() {
  if (!ring_.empty() && ring_.back().count == updates_seen_) return;
  Checkpoint cp;
  cp.count = updates_seen_;
  BitWriter writer;
  live_->Serialize(&writer);
  cp.words = writer.words();
  cp.bits = writer.bit_count();
  ring_.push_back(std::move(cp));
  if (max_checkpoints_ > 0) {
    while (ring_.size() > max_checkpoints_) ring_.pop_front();
  }
}

void WindowManager::PushBatch(const Update* updates, size_t count) {
  size_t done = 0;
  while (done < count) {
    // Stop the chunk at the next seal boundary so checkpoint positions
    // are exact multiples of the interval, independent of how callers
    // chunk their batches.
    const uint64_t room = next_seal_ - updates_seen_;
    const size_t take =
        static_cast<size_t>(std::min<uint64_t>(room, count - done));
    live_->UpdateBatch(updates + done, take);
    updates_seen_ += take;
    done += take;
    if (updates_seen_ == next_seal_) {
      Seal();
      next_seal_ += interval_;
    }
  }
}

size_t WindowManager::Drive(const UpdateStream& stream) {
  PushBatch(stream.data(), stream.size());
  return stream.size();
}

void WindowManager::SealEpoch(uint64_t count) {
  updates_seen_ += count;
  Seal();
  // Re-anchor the automatic schedule: the next owned-ingestion seal comes
  // one full interval after this epoch boundary.
  next_seal_ = updates_seen_ + interval_;
}

WindowManager::Window WindowManager::WindowSketch(uint64_t w) const {
  LPS_CHECK(!ring_.empty());
  const uint64_t want_start = w >= updates_seen_ ? 0 : updates_seen_ - w;

  // Newest checkpoint at or before the wanted start — the window start
  // rounds DOWN so the materialized window always contains the last w
  // updates. Reaching behind the ring (evicted history) clamps to the
  // oldest retained snapshot.
  const auto past = std::upper_bound(
      ring_.begin(), ring_.end(), want_start,
      [](uint64_t value, const Checkpoint& cp) { return value < cp.count; });
  const Checkpoint& expired = past == ring_.begin() ? *past : *std::prev(past);

  // S(now): round-trip the live sketch through its own wire format — the
  // cheapest faithful copy the LinearSketch contract offers, and O(sketch
  // size) like everything else here.
  BitWriter now;
  live_->Serialize(&now);
  BitReader now_reader(now);
  Window out;
  out.sketch = DeserializeAnySketch(&now_reader);
  LPS_CHECK(out.sketch != nullptr);

  // Minus S(expired): fold -1 x the checkpointed prefix counters in.
  BitReader expired_reader(expired.words, expired.bits);
  auto expired_sketch = DeserializeAnySketch(&expired_reader);
  LPS_CHECK(expired_sketch != nullptr);
  out.sketch->MergeNegated(*expired_sketch);

  out.start = expired.count;
  out.length = updates_seen_ - expired.count;
  return out;
}

size_t WindowManager::CheckpointBytes() const {
  size_t bytes = 0;
  for (const Checkpoint& cp : ring_) bytes += cp.words.size() * 8;
  return bytes;
}

}  // namespace lps::stream
