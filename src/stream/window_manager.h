// WindowManager — sliding-window queries over any LinearSketch, by
// subtraction instead of re-ingestion.
//
// Every structure in this library is a linear function of the stream
// vector x, so the sketch of a window is the difference of two prefix
// sketches: if S(t) sketches the first t updates, then
//
//     WindowSketch(w) = S(now) - S(expired)      (MergeNegated)
//
// sketches exactly the updates in (expired, now]. The WindowManager
// maintains that subtraction cheaply: a ring of CHECKPOINTS — serialized
// prefix snapshots of the live sketch, sealed every checkpoint_interval
// updates — plus the live sketch itself as S(now). Materializing any
// trailing window costs O(sketch size): deserialize the current state,
// deserialize the newest checkpoint at or before the window start, and
// fold -1 x its counters in. No update is ever re-ingested, and the
// stream itself is never buffered.
//
// Window starts round DOWN to a checkpoint boundary: WindowSketch(w)
// returns the smallest materializable window that CONTAINS the last w
// updates (up to checkpoint_interval - 1 extra leading updates; exact
// when the window start lands on a checkpoint). The returned Window
// reports the actual start/length so callers can see the rounding.
//
// Exactness follows the Merge taxonomy (tests/merge_test.cc): for the
// exact-arithmetic families (GF(2^61-1) fingerprints/syndromes and
// integer-valued double counters) the materialized window is
// BIT-IDENTICAL to a sketch fed only the window's updates; for genuinely
// real-scaled counters (p-stable rows, the Lp sampler's t_i^{-1/p}
// scaling) it agrees up to floating-point reassociation, which the
// samplers' index selection tolerates. The duplicates finders re-feed
// their (i, -1) initialization inside MergeNegated, so a materialized
// window behaves as a finder that saw exactly the window's letters.
//
// Composition with the parallel runtime: when ingestion flows through a
// ParallelPipeline, replica 0 holds the full prefix only after a
// MergeShards() epoch — so checkpoints must be sealed AT epoch
// boundaries, not mid-epoch. SealEpoch(count) is that hook: call it right
// after MergeShards() and the epoch boundary becomes a checkpoint,
// making any trailing run of epochs materializable. When the
// WindowManager owns ingestion instead (Push/PushBatch/Drive forwarding
// to the live sketch), it seals automatically every checkpoint_interval
// updates, splitting batches at the boundary so checkpoints land exactly.
//
// Memory: ring size x serialized sketch size. max_checkpoints bounds the
// ring (oldest snapshots are evicted first), trading farthest-back window
// start for memory; CheckpointBytes() reports the current footprint so
// deployments can size the ring (bench/bench_window.cc tracks it).
//
// Spill (AttachSpill): with a persist::CheckpointStore attached, only the
// newest `resident_checkpoints` snapshots stay in RAM; older ones are
// delta-compressed against their predecessor (persist::EncodeBestDelta,
// with a keyframe every keyframe_interval records so no rehydration
// replays an unbounded chain) and appended to the store. WindowSketch()
// rehydrates spilled checkpoints transparently — decode the chain from
// the nearest keyframe — so windowed queries are BIT-IDENTICAL to the
// all-RAM ring for the exact-arithmetic families (the codec never
// interprets the serialized bytes, so this holds for every kind).
// max_checkpoints then bounds resident + spilled together: the oldest
// SPILLED entries are dropped first (their records stay in the
// append-only store but become unreachable). SpilledBytes() reports the
// compressed on-disk footprint next to CheckpointBytes()'s resident one.
//
// Thread-safety: none of its own — like the pipeline's producer side,
// Push/Drive/Seal/WindowSketch must be externally serialized with any
// concurrent use of the live sketch.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/persist/checkpoint_store.h"
#include "src/persist/delta_codec.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/update.h"

namespace lps::stream {

class WindowManager {
 public:
  struct Options {
    /// Updates between automatically sealed checkpoints (Push/Drive
    /// ingestion). Smaller = finer window granularity, more snapshots.
    uint64_t checkpoint_interval = 4096;
    /// Ring capacity in checkpoints; 0 = unbounded. When full, the OLDEST
    /// checkpoint is evicted: windows reaching farther back than the ring
    /// clamp to the oldest retained boundary (Window reports the clamp).
    size_t max_checkpoints = 0;
  };

  /// A materialized trailing window: the sketch of updates
  /// [start, start + length), where start is the chosen checkpoint
  /// boundary and start + length == updates_seen().
  struct Window {
    std::unique_ptr<LinearSketch> sketch;
    uint64_t start = 0;
    uint64_t length = 0;
  };

  /// Spill configuration: see the class comment. `store` must outlive
  /// this object; `stream_key` names this manager's record stream inside
  /// the store (records from earlier processes under the same key are
  /// ignored — the chain restarts at a keyframe).
  struct SpillOptions {
    persist::CheckpointStore* store = nullptr;
    std::string stream_key;
    /// Newest checkpoints kept in RAM (>= 1).
    size_t resident_checkpoints = 4;
    /// Every keyframe_interval-th spilled record is self-contained.
    size_t keyframe_interval = 16;
  };

  /// Attaches to `live`, which must outlive this object. The live
  /// sketch's CURRENT state becomes the position-0 checkpoint — attach at
  /// construction time (or treat prior state as permanently in-window).
  WindowManager(LinearSketch* live, Options options);

  /// Ingestion-owning mode: forwards to the live sketch's batch fast
  /// path, sealing a checkpoint every checkpoint_interval updates
  /// (batches are split at the boundary, so checkpoint positions are
  /// exact multiples regardless of chunking).
  void Push(Update u) { PushBatch(&u, 1); }
  void PushBatch(const Update* updates, size_t count);
  size_t Drive(const UpdateStream& stream);

  /// Epoch mode: the caller ingested `count` updates into the live sketch
  /// out of band (e.g. a ParallelPipeline epoch, closed by MergeShards()
  /// so replica 0 holds the full prefix) — record them and seal a
  /// checkpoint at the new position.
  void SealEpoch(uint64_t count);

  /// Seals a checkpoint at the current position (idempotent at a given
  /// position). Called automatically by PushBatch and SealEpoch.
  void Seal();

  /// Materializes the sketch of (at least) the last `w` updates in
  /// O(sketch size): current state minus the newest checkpoint at or
  /// before the window start. w >= updates_seen() (or w reaching behind
  /// an evicted checkpoint) clamps to the oldest retained boundary.
  Window WindowSketch(uint64_t w) const;

  /// Enables spill-to-store for checkpoints beyond the resident budget.
  /// Attach before ingesting (checkpoints already beyond the budget are
  /// spilled immediately). If a store append ever fails (e.g. disk
  /// full), spilling is disabled, the checkpoint stays resident, and the
  /// error is retained in last_spill_error().
  void AttachSpill(SpillOptions spill);

  uint64_t updates_seen() const { return updates_seen_; }
  uint64_t checkpoint_interval() const { return interval_; }
  /// Materializable checkpoints: resident + spilled.
  size_t checkpoint_count() const { return ring_.size() + spilled_.size(); }
  size_t spilled_count() const { return spilled_.size(); }
  /// Earliest window start currently materializable (the oldest retained
  /// checkpoint's position, spilled or resident).
  uint64_t oldest_start() const {
    return spilled_.empty() ? ring_.front().count : spilled_.front().count;
  }
  /// Serialized bytes held by the RESIDENT checkpoint ring — the memory
  /// the sliding-window capability costs on top of the live sketch.
  size_t CheckpointBytes() const;
  /// Compressed bytes this manager has appended to the spill store.
  uint64_t SpilledBytes() const { return spilled_bytes_; }
  Status last_spill_error() const { return last_spill_error_; }

 private:
  struct Checkpoint {
    uint64_t count = 0;            // prefix length at seal time
    std::vector<uint64_t> words;   // full serialized state (BitWriter)
    size_t bits = 0;
  };

  /// A spilled checkpoint: where its compressed delta lives in the store
  /// and whether it is a self-contained keyframe.
  struct SpilledCheckpoint {
    uint64_t count = 0;
    size_t record_index = 0;       // index in the store's key stream
    bool keyframe = false;
  };

  /// Moves ring_.front() into the store as a compressed delta record.
  void SpillOldest();
  /// Applies ring / spill retention after a seal.
  void Trim();
  /// Reconstructs the spilled checkpoint at spilled_[meta_index] by
  /// decoding the delta chain from its nearest keyframe (reusing the
  /// rehydrate cache when it lies on the chain).
  Checkpoint Rehydrate(size_t meta_index) const;

  LinearSketch* live_;
  uint64_t interval_;
  size_t max_checkpoints_;
  uint64_t updates_seen_ = 0;
  uint64_t next_seal_;               // position of the next automatic seal
  std::deque<Checkpoint> ring_;      // ascending by count; front = oldest

  SpillOptions spill_;               // spill_.store == nullptr -> disabled
  std::deque<SpilledCheckpoint> spilled_;  // ascending; all older than ring_
  // Plaintext of the most recently spilled checkpoint — the predecessor
  // the next spilled record deltas against.
  std::vector<uint64_t> last_spilled_words_;
  size_t last_spilled_bits_ = 0;
  size_t spill_records_ = 0;         // spilled by THIS manager (keyframe cadence)
  uint64_t spilled_bytes_ = 0;
  Status last_spill_error_;
  // Single-entry rehydrate cache, keyed by checkpoint position.
  mutable bool cache_valid_ = false;
  mutable Checkpoint cache_;
};

}  // namespace lps::stream
