// ParallelPipeline — the parallel ingestion runtime for mergeable
// summaries.
//
// A stream is partitioned across k shards; each shard owns one replica of
// every registered structure (constructed with identical parameters and
// seeds). The producer thread partitions updates into per-shard staging
// buffers; whenever a shard's buffer reaches batch_size it is sealed into
// a batch and handed to the shard's owning worker through a bounded MPSC
// ring buffer. Workers apply batches through the UpdateBatch fast path.
// Because every structure is a LinearSketch, replica states add
// coordinate-wise: MergeShards() quiesces the pipeline (every queued batch
// applied, workers idle) and collapses replicas 1..k-1 into replica 0,
// which then holds exactly the sketch of the whole stream.
//
// Threading model:
//   - threads == 0  (the ShardedDriver special case): no workers are
//     spawned and sealed batches are applied inline on the caller thread —
//     single-threaded and deterministic, what the property tests drive.
//   - threads == t >= 1: t workers are spawned (clamped to the shard
//     count — one worker per shard is the maximum useful parallelism) and
//     shard s is owned by worker s % t. Each worker owns one bounded ring
//     of (shard, batch) entries and is the only consumer of its ring, so
//     per-shard batches are applied in the order they were sealed.
//
// Determinism guarantee: the sequence of batches a shard's replicas see —
// both the partition of updates into shards and the chunk boundaries
// within each shard — is decided entirely on the producer side, by the
// partitioner and the batch_size fill rule. Thread interleaving only
// affects *when* a batch is applied relative to other shards' batches,
// and shards are independent objects. Ingesting the same stream is
// therefore bit-identical across every thread count, including threads=0,
// and (by linearity) the merged state is bit-identical to solo ingest for
// exact-arithmetic structures — tests/parallel_pipeline_test.cc and
// tests/merge_test.cc enforce both.
//
// Two partition policies:
//   - kByIndex (default): shard = Mix64(coordinate) % k. Every update to
//     a coordinate lands on the same shard — the natural policy when
//     shards are fed by a coordinate-keyed router.
//   - kRoundRobin: updates are dealt to shards in arrival order — the
//     natural policy for load-balancing a single firehose.
// Both are valid for any LinearSketch: linearity makes the final state
// independent of which shard saw which update.
//
// Epochs: Push keeps flowing after a MergeShards(); each merge closes an
// epoch (replica 0 accumulates the whole stream so far, replicas 1..k-1
// reset for the next epoch). Queries against replica 0 between epochs are
// safe — the quiesce barrier guarantees no worker touches any replica
// until ingestion resumes. examples/parallel_firehose.cpp shows the loop.
//
// Thread-safety contract: the queues are MPSC-safe, but the partitioner
// state (staging buffers, round-robin cursor) lives on the producer side —
// Push/Drive/Flush/MergeShards must be externally serialized (one
// coordinator thread, or callers taking turns). Add() must complete
// before the first Push. Workers are internal and never escape.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/stream/linear_sketch.h"
#include "src/stream/stream_driver.h"
#include "src/stream/update.h"

namespace lps::stream {

class ParallelPipeline {
 public:
  enum class Partition {
    kByIndex,     ///< shard = Mix64(index) % k (coordinate-sticky)
    kRoundRobin,  ///< shard = arrival position % k (load-balancing)
  };

  /// Ring capacity in batches per worker: enough that the producer stays
  /// ahead of a momentarily stalled worker, small enough that backpressure
  /// kicks in before unbounded memory growth (8 batches x 64 KiB = 512 KiB
  /// per worker at the default batch size).
  static constexpr size_t kDefaultQueueCapacity = 8;

  struct Options {
    int shards = 1;
    /// Worker threads; 0 applies batches inline on the caller thread
    /// (deterministic single-threaded mode). Values above `shards` are
    /// clamped — one worker per shard is the maximum useful parallelism.
    int threads = 0;
    Partition partition = Partition::kByIndex;
    size_t batch_size = StreamDriver::kDefaultBatchSize;
    size_t queue_capacity = kDefaultQueueCapacity;
  };

  explicit ParallelPipeline(Options options);

  /// Drains every queued batch, stops the workers, and joins them. Staged
  /// (unsealed) updates are NOT flushed — call Flush() first if they must
  /// reach the sinks, exactly like StreamDriver's Push/Flush contract.
  ~ParallelPipeline();

  ParallelPipeline(const ParallelPipeline&) = delete;
  ParallelPipeline& operator=(const ParallelPipeline&) = delete;

  /// Registers one logical structure by its k per-shard replicas, which
  /// must be constructed identically (same parameters and seeds) and
  /// outlive the pipeline's last Drive/Flush/MergeShards call. replicas[0]
  /// is the merge target. Must be called before ingestion starts. Returns
  /// *this for chaining.
  ParallelPipeline& Add(std::string name, std::vector<LinearSketch*> replicas);

  /// Partitions `count` updates across the shards, feeds the workers, and
  /// quiesces (every update applied on return). Returns `count`.
  size_t Drive(const Update* updates, size_t count);
  size_t Drive(const UpdateStream& stream);

  /// Buffered single-update ingestion; sealed batches flow to the workers
  /// while the producer keeps pushing. Drive == Push per update + final
  /// Flush, state-wise — for every thread count.
  void Push(Update u);

  /// Push for a run of updates, without the quiesce Drive ends with —
  /// the entry point for async feeders (src/io/StreamFeeder) that must
  /// keep the workers busy across arbitrarily chunked arrivals.
  /// State-identical to calling Push on each update: chunk boundaries
  /// stay governed by the producer-side fill rule, so how the arrivals
  /// were chunked never shows in the final state.
  void PushBatch(const Update* updates, size_t count);

  /// Seals every shard's staged remainder and waits until the workers
  /// have applied every queued batch (the quiesce barrier). On return the
  /// replicas jointly hold the whole stream so far and no worker touches
  /// them until the next Push.
  void Flush();

  /// Closes an epoch: Flush (quiesce), then for every registered
  /// structure Merge replicas 1..k-1 into replica 0 (which afterwards
  /// holds the whole stream's sketch) and Reset the merged-from replicas
  /// so they are ready for the next epoch. Safe to query replica 0 after.
  void MergeShards();

  int shards() const { return static_cast<int>(staging_.size()); }
  int threads() const { return static_cast<int>(workers_.size()); }
  size_t batch_size() const { return batch_size_; }
  size_t queue_capacity() const { return queue_capacity_; }
  size_t sink_count() const { return sinks_.size(); }
  size_t updates_driven() const { return updates_driven_; }
  uint64_t epochs_merged() const { return epochs_merged_; }

 private:
  struct Sink {
    std::string name;
    std::vector<LinearSketch*> replicas;  // one per shard
  };

  /// One sealed chunk of a shard's sub-stream, in producer seal order.
  struct Batch {
    int shard = 0;
    std::vector<Update> updates;
  };

  /// Bounded MPSC ring buffer of Batches. Producers block while the ring
  /// is full (backpressure); the single consumer blocks while it is
  /// empty. in_flight counts batches enqueued but not yet fully applied,
  /// so WaitDrained() doubles as the quiesce barrier — and, because the
  /// counter is updated under the same mutex the consumer holds after
  /// applying, it also publishes the consumer's sketch writes to the
  /// waiting producer (the happens-before edge MergeShards relies on).
  class BatchQueue {
   public:
    explicit BatchQueue(size_t capacity);

    void Push(Batch batch);    ///< blocks while full; CHECK-fails if stopped
    bool Pop(Batch* out);      ///< false once stopped and drained
    void MarkApplied();        ///< consumer: the popped batch is applied
    void WaitDrained();        ///< blocks until in_flight == 0
    void Stop();               ///< no more pushes; consumer drains and exits

   private:
    std::mutex mutex_;
    std::condition_variable can_push_;
    std::condition_variable can_pop_;
    std::condition_variable drained_;
    std::vector<Batch> ring_;  // fixed capacity, head_/size_ window
    size_t head_ = 0;
    size_t size_ = 0;
    size_t in_flight_ = 0;
    bool stopped_ = false;
  };

  int ShardOf(const Update& u);
  /// Staging buffer -> queue (or inline apply when threads == 0).
  void SealShard(int s);
  void ApplyBatch(int s, const Update* updates, size_t count);
  void WorkerMain(int w);

  Partition partition_;
  size_t batch_size_;
  size_t queue_capacity_;
  uint64_t round_robin_next_ = 0;
  std::vector<Sink> sinks_;
  std::vector<std::vector<Update>> staging_;  // per-shard, producer-owned
  size_t updates_driven_ = 0;
  uint64_t epochs_merged_ = 0;

  std::vector<std::unique_ptr<BatchQueue>> queues_;  // one per worker
  std::vector<std::thread> workers_;
};

}  // namespace lps::stream
