// ShardedDriver — the single-threaded, deterministic special case of the
// parallel ingestion runtime.
//
// Historically this was its own ingestion layer; it is now a thin
// threads=0 configuration of ParallelPipeline: the same partitioners
// (coordinate-sticky kByIndex, load-balancing kRoundRobin), the same
// per-shard chunk boundaries, the same MergeShards() epoch semantics —
// but every sealed batch is applied inline on the caller thread, so
// ingestion is single-threaded and deterministic (the property tests in
// tests/merge_test.cc rely on that). Because chunk boundaries are decided
// on the producer side regardless of thread count, a ShardedDriver and a
// ParallelPipeline with threads >= 1 produce bit-identical replica state
// for the same stream — tests/parallel_pipeline_test.cc enforces it.
//
// DEPRECATED: new code should include src/lps.h and construct a
// ParallelPipeline with Options{.threads = 0} directly; this shim exists
// only for the historical test suites. The message below turns into a
// hard error in the -Werror CI jobs, so a fresh include cannot land
// silently; legacy call sites opt out by defining
// LPS_SHARDED_DRIVER_ALLOW_DEPRECATED before the include.
#pragma once

#ifndef LPS_SHARDED_DRIVER_ALLOW_DEPRECATED
#pragma message( \
    "sharded_driver.h is deprecated: include src/lps.h and use " \
    "stream::ParallelPipeline (Options{.threads = 0}) instead")
#endif

#include "src/stream/parallel_pipeline.h"
#include "src/stream/stream_driver.h"

namespace lps::stream {

class ShardedDriver : public ParallelPipeline {
 public:
  using Partition = ParallelPipeline::Partition;

  explicit ShardedDriver(int shards, Partition partition = Partition::kByIndex,
                         size_t batch_size = StreamDriver::kDefaultBatchSize)
      : ParallelPipeline(MakeOptions(shards, partition, batch_size)) {}

 private:
  static Options MakeOptions(int shards, Partition partition,
                             size_t batch_size) {
    Options options;
    options.shards = shards;
    options.threads = 0;  // inline: no workers, no queues
    options.partition = partition;
    options.batch_size = batch_size;
    return options;
  }
};

}  // namespace lps::stream
