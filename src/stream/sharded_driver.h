// ShardedDriver — the mergeable-summaries deployment mode as an ingestion
// layer.
//
// A stream is partitioned across k shards; each shard owns one replica of
// every registered structure (constructed with identical parameters and
// seeds) and ingests only its own sub-stream through the batched
// UpdateBatch fast path. Because every structure is a LinearSketch,
// replica states add coordinate-wise: MergeShards() collapses replicas
// 1..k-1 into replica 0, which then holds exactly the sketch of the whole
// stream — the same state single-stream ingestion would have produced
// (bit-identical for integer/field-valued counters; up to floating-point
// reassociation for real-valued scaled counters).
//
// Two partition policies:
//   - kByIndex (default): shard = hash(coordinate) % k. Every update to a
//     coordinate lands on the same shard — the natural policy when shards
//     are fed by a coordinate-keyed router.
//   - kRoundRobin: updates are dealt to shards in arrival order — the
//     natural policy for load-balancing a single firehose.
// Both are valid for any LinearSketch: linearity makes the final state
// independent of which shard saw which update.
//
// The driver itself is single-threaded and deterministic (the property
// tests rely on that); the per-shard replicas are independent objects, so
// callers wanting parallel ingestion can partition with the same policies
// and run one thread per shard — bench_throughput's sharded section does
// exactly this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/stream/linear_sketch.h"
#include "src/stream/stream_driver.h"
#include "src/stream/update.h"

namespace lps::stream {

class ShardedDriver {
 public:
  enum class Partition {
    kByIndex,     ///< shard = Mix64(index) % k (coordinate-sticky)
    kRoundRobin,  ///< shard = arrival position % k (load-balancing)
  };

  explicit ShardedDriver(int shards, Partition partition = Partition::kByIndex,
                         size_t batch_size = StreamDriver::kDefaultBatchSize);

  /// Registers one logical structure by its k per-shard replicas, which
  /// must be constructed identically (same parameters and seeds) and
  /// outlive the driver's last Drive/Flush/MergeShards call. replicas[0]
  /// is the merge target. Returns *this for chaining.
  ShardedDriver& Add(std::string name, std::vector<LinearSketch*> replicas);

  /// Partitions `count` updates across the shards and feeds each shard's
  /// replicas in batch_size() chunks. Returns the number of updates driven.
  size_t Drive(const Update* updates, size_t count);
  size_t Drive(const UpdateStream& stream);

  /// Buffered single-update ingestion; Flush drains every shard's pending
  /// buffer. Drive == Push per update + final Flush, state-wise.
  void Push(Update u);
  void Flush();

  /// Collapses every registered structure: Merge replicas 1..k-1 into
  /// replica 0 (which afterwards holds the whole stream's sketch) and
  /// Reset the merged-from replicas so they are ready for the next epoch.
  void MergeShards();

  int shards() const { return static_cast<int>(buffers_.size()); }
  size_t batch_size() const { return batch_size_; }
  size_t sink_count() const { return sinks_.size(); }
  size_t updates_driven() const { return updates_driven_; }

 private:
  int ShardOf(const Update& u);
  void FlushShard(int s);

  struct Sink {
    std::string name;
    std::vector<LinearSketch*> replicas;  // one per shard
  };

  Partition partition_;
  size_t batch_size_;
  uint64_t round_robin_next_ = 0;
  std::vector<Sink> sinks_;
  std::vector<std::vector<Update>> buffers_;  // per-shard staging
  size_t updates_driven_ = 0;
};

}  // namespace lps::stream
