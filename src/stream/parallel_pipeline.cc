#include "src/stream/parallel_pipeline.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::stream {

// ------------------------------------------------------------ BatchQueue --

ParallelPipeline::BatchQueue::BatchQueue(size_t capacity)
    : ring_(capacity) {
  LPS_CHECK(capacity >= 1);
}

void ParallelPipeline::BatchQueue::Push(Batch batch) {
  std::unique_lock<std::mutex> lock(mutex_);
  can_push_.wait(lock, [this] { return size_ < ring_.size() || stopped_; });
  LPS_CHECK(!stopped_);  // pushing into a stopped queue is a caller bug
  ring_[(head_ + size_) % ring_.size()] = std::move(batch);
  ++size_;
  ++in_flight_;
  can_pop_.notify_one();
}

bool ParallelPipeline::BatchQueue::Pop(Batch* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  can_pop_.wait(lock, [this] { return size_ > 0 || stopped_; });
  if (size_ == 0) return false;  // stopped and drained
  *out = std::move(ring_[head_]);
  head_ = (head_ + 1) % ring_.size();
  --size_;
  can_push_.notify_one();
  return true;
}

void ParallelPipeline::BatchQueue::MarkApplied() {
  std::unique_lock<std::mutex> lock(mutex_);
  LPS_CHECK(in_flight_ >= 1);
  --in_flight_;
  if (in_flight_ == 0) drained_.notify_all();
}

void ParallelPipeline::BatchQueue::WaitDrained() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return in_flight_ == 0; });
}

void ParallelPipeline::BatchQueue::Stop() {
  std::unique_lock<std::mutex> lock(mutex_);
  stopped_ = true;
  can_pop_.notify_all();
  can_push_.notify_all();
}

// ------------------------------------------------------ ParallelPipeline --

ParallelPipeline::ParallelPipeline(Options options)
    : partition_(options.partition), batch_size_(options.batch_size),
      queue_capacity_(options.queue_capacity),
      staging_(static_cast<size_t>(options.shards)) {
  LPS_CHECK(options.shards >= 1);
  LPS_CHECK(options.threads >= 0);
  LPS_CHECK(options.batch_size >= 1);
  LPS_CHECK(options.queue_capacity >= 1);
  for (auto& buffer : staging_) buffer.reserve(batch_size_);
  const int threads = std::min(options.threads, options.shards);
  queues_.reserve(static_cast<size_t>(threads));
  workers_.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    queues_.push_back(std::make_unique<BatchQueue>(queue_capacity_));
  }
  // Spawn only after every queue exists: a worker indexes queues_[w].
  for (int w = 0; w < threads; ++w) {
    workers_.emplace_back([this, w] { WorkerMain(w); });
  }
}

ParallelPipeline::~ParallelPipeline() {
  for (auto& queue : queues_) queue->Stop();
  for (auto& worker : workers_) worker.join();
}

ParallelPipeline& ParallelPipeline::Add(std::string name,
                                        std::vector<LinearSketch*> replicas) {
  LPS_CHECK(replicas.size() == staging_.size());
  for (const LinearSketch* replica : replicas) LPS_CHECK(replica != nullptr);
  sinks_.push_back(Sink{std::move(name), std::move(replicas)});
  return *this;
}

int ParallelPipeline::ShardOf(const Update& u) {
  const uint64_t k = staging_.size();
  if (partition_ == Partition::kByIndex) {
    return static_cast<int>(Mix64(u.index) % k);
  }
  return static_cast<int>(round_robin_next_++ % k);
}

void ParallelPipeline::ApplyBatch(int s, const Update* updates,
                                  size_t count) {
  for (auto& sink : sinks_) {
    sink.replicas[static_cast<size_t>(s)]->UpdateBatch(updates, count);
  }
}

void ParallelPipeline::SealShard(int s) {
  auto& staging = staging_[static_cast<size_t>(s)];
  if (staging.empty()) return;
  if (workers_.empty()) {
    ApplyBatch(s, staging.data(), staging.size());
    staging.clear();
    return;
  }
  Batch batch;
  batch.shard = s;
  batch.updates = std::move(staging);
  queues_[static_cast<size_t>(s) % workers_.size()]->Push(std::move(batch));
  staging = std::vector<Update>();
  staging.reserve(batch_size_);
}

void ParallelPipeline::WorkerMain(int w) {
  BatchQueue& queue = *queues_[static_cast<size_t>(w)];
  Batch batch;
  while (queue.Pop(&batch)) {
    // This worker is the only consumer for every shard mapped to it, so
    // the shard's replicas are touched by exactly one thread here.
    ApplyBatch(batch.shard, batch.updates.data(), batch.updates.size());
    queue.MarkApplied();
  }
}

size_t ParallelPipeline::Drive(const Update* updates, size_t count) {
  for (size_t t = 0; t < count; ++t) Push(updates[t]);
  Flush();
  return count;
}

size_t ParallelPipeline::Drive(const UpdateStream& stream) {
  return Drive(stream.data(), stream.size());
}

void ParallelPipeline::PushBatch(const Update* updates, size_t count) {
  for (size_t t = 0; t < count; ++t) Push(updates[t]);
}

void ParallelPipeline::Push(Update u) {
  const int s = ShardOf(u);
  auto& staging = staging_[static_cast<size_t>(s)];
  staging.push_back(u);
  ++updates_driven_;
  if (staging.size() >= batch_size_) SealShard(s);
}

void ParallelPipeline::Flush() {
  for (int s = 0; s < shards(); ++s) SealShard(s);
  // Quiesce barrier: every queued batch applied, and the workers' sketch
  // writes published to this thread through the queues' mutexes.
  for (auto& queue : queues_) queue->WaitDrained();
}

void ParallelPipeline::MergeShards() {
  Flush();
  for (auto& sink : sinks_) {
    LinearSketch* target = sink.replicas[0];
    for (size_t s = 1; s < sink.replicas.size(); ++s) {
      target->Merge(*sink.replicas[s]);
      sink.replicas[s]->Reset();
    }
  }
  ++epochs_merged_;
}

}  // namespace lps::stream
