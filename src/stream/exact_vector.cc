#include "src/stream/exact_vector.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace lps::stream {

void ExactVector::Apply(const Update& u) {
  LPS_CHECK(u.index < x_.size());
  x_[u.index] += u.delta;
}

void ExactVector::Apply(const UpdateStream& stream) {
  for (const Update& u : stream) Apply(u);
}

double ExactVector::NormP(double p) const {
  LPS_CHECK(p > 0);
  return std::pow(NormPToP(p), 1.0 / p);
}

double ExactVector::NormPToP(double p) const {
  LPS_CHECK(p > 0);
  double sum = 0;
  for (int64_t v : x_) {
    if (v != 0) sum += std::pow(std::abs(static_cast<double>(v)), p);
  }
  return sum;
}

uint64_t ExactVector::L0() const {
  uint64_t count = 0;
  for (int64_t v : x_) count += (v != 0);
  return count;
}

std::vector<uint64_t> ExactVector::Support() const {
  std::vector<uint64_t> support;
  for (uint64_t i = 0; i < x_.size(); ++i) {
    if (x_[i] != 0) support.push_back(i);
  }
  return support;
}

int64_t ExactVector::PositiveMass() const {
  int64_t mass = 0;
  for (int64_t v : x_) {
    if (v > 0) mass += v;
  }
  return mass;
}

int64_t ExactVector::NegativeMass() const {
  int64_t mass = 0;
  for (int64_t v : x_) {
    if (v < 0) mass -= v;
  }
  return mass;
}

int64_t ExactVector::Total() const {
  int64_t total = 0;
  for (int64_t v : x_) total += v;
  return total;
}

std::vector<double> ExactVector::LpDistribution(double p) const {
  std::vector<double> dist(x_.size(), 0.0);
  if (p == 0.0) {
    const uint64_t k = L0();
    if (k == 0) return dist;
    for (uint64_t i = 0; i < x_.size(); ++i) {
      if (x_[i] != 0) dist[i] = 1.0 / static_cast<double>(k);
    }
    return dist;
  }
  const double total = NormPToP(p);
  if (total == 0) return dist;
  for (uint64_t i = 0; i < x_.size(); ++i) {
    if (x_[i] != 0) {
      dist[i] = std::pow(std::abs(static_cast<double>(x_[i])), p) / total;
    }
  }
  return dist;
}

double ExactVector::ErrM2(uint64_t m) const {
  std::vector<double> magnitudes;
  magnitudes.reserve(x_.size());
  for (int64_t v : x_) {
    if (v != 0) magnitudes.push_back(std::abs(static_cast<double>(v)));
  }
  if (magnitudes.size() <= m) return 0.0;
  std::sort(magnitudes.begin(), magnitudes.end(), std::greater<>());
  double sum_sq = 0;
  for (size_t i = m; i < magnitudes.size(); ++i) {
    sum_sq += magnitudes[i] * magnitudes[i];
  }
  return std::sqrt(sum_sq);
}

std::vector<uint64_t> ExactVector::HeavyHitters(double p, double phi) const {
  const double threshold = phi * NormP(p);
  std::vector<uint64_t> heavy;
  for (uint64_t i = 0; i < x_.size(); ++i) {
    if (std::abs(static_cast<double>(x_[i])) >= threshold && x_[i] != 0) {
      heavy.push_back(i);
    }
  }
  return heavy;
}

}  // namespace lps::stream
