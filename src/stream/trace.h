// Plain-text stream traces: a line-oriented interchange format so that
// workloads can be generated once, shared, and replayed through any of the
// library's sketches (and through the lps_cli tool).
//
// Format, one record per line:
//   # comment
//   n <universe-size>          (header, required first non-comment line)
//   u <index> <delta>          (update record)
//   l <letter>                 (letter record, for duplicates streams)
// Update and letter records may be mixed; letters are syntactic sugar for
// "u <letter> 1".
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>

#include "src/stream/generators.h"
#include "src/stream/update.h"
#include "src/util/status.h"

namespace lps::stream {

struct Trace {
  uint64_t n = 0;
  UpdateStream updates;
};

/// Writes a trace; letters (if any) are written as letter records.
void WriteTrace(std::ostream& out, uint64_t n, const UpdateStream& updates);
void WriteLetterTrace(std::ostream& out, uint64_t n,
                      const LetterStream& letters);

/// Parses a trace. Malformed input yields InvalidArgument with the line
/// number; indices outside [0, n) are rejected.
Result<Trace> ReadTrace(std::istream& in);

}  // namespace lps::stream
