// StreamDriver — the batched ingestion layer between a raw update stream
// and any number of sketches/samplers ("sinks").
//
// The paper's structures are all linear, so the only thing that matters
// about ingestion order is that each structure sees the updates in stream
// order; the driver exploits this by cutting the stream into cache-sized
// chunks and handing each chunk to every registered sink's UpdateBatch
// fast path. One chunk of updates stays resident in L1/L2 while every
// sink's rows sweep over it, instead of every update taking a round trip
// through every structure.
//
// Sinks are registered either as a raw callback or, via Add(), as any
// object exposing UpdateBatch(const Update*, size_t) — which all samplers,
// sketches, and norm estimators in this library do.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/stream/update.h"

namespace lps::stream {

class StreamDriver {
 public:
  using BatchFn = std::function<void(const Update*, size_t)>;

  /// 4096 updates x 16 bytes = 64 KiB per chunk: fits L2 alongside the
  /// sinks' tables without thrashing L1.
  static constexpr size_t kDefaultBatchSize = 4096;

  explicit StreamDriver(size_t batch_size = kDefaultBatchSize);

  /// Registers a named sink fed by callback. Returns *this for chaining.
  StreamDriver& AddSink(std::string name, BatchFn fn);

  /// Registers any object with an UpdateBatch(const Update*, size_t)
  /// member — every sampler/sketch/norm estimator in this library.
  /// The sink must outlive the driver's last Drive/Flush call.
  template <typename Sink>
  StreamDriver& Add(std::string name, Sink* sink) {
    return AddSink(std::move(name), [sink](const Update* updates,
                                           size_t count) {
      sink->UpdateBatch(updates, count);
    });
  }

  /// Feeds `count` updates to every sink in batch_size() chunks. Returns
  /// the number of updates driven.
  size_t Drive(const Update* updates, size_t count);
  size_t Drive(const UpdateStream& stream);

  /// Buffered single-update ingestion for callers that produce updates one
  /// at a time: Push collects updates and flushes whenever a full batch
  /// accumulates; Flush drains the remainder. A stream fed through Push +
  /// final Flush produces exactly the same sink state as Drive.
  void Push(Update u);
  void Flush();

  size_t batch_size() const { return batch_size_; }
  size_t sink_count() const { return sinks_.size(); }
  const std::string& sink_name(size_t s) const { return sinks_[s].first; }

  /// Ingestion counters, for tools and benchmarks.
  size_t updates_driven() const { return updates_driven_; }
  size_t batches_driven() const { return batches_driven_; }

 private:
  size_t batch_size_;
  std::vector<std::pair<std::string, BatchFn>> sinks_;
  std::vector<Update> buffer_;  // Push staging area
  size_t updates_driven_ = 0;
  size_t batches_driven_ = 0;
};

}  // namespace lps::stream
