// Bit-exact accounting of protocol transcripts. Every message in the
// communication harness is a BitWriter; the stats collect per-message bit
// counts, which are the quantities the paper's lower bounds constrain
// (Section 4: all bounds are proved in the joint random source model, so
// shared seeds travel out of band and are not charged).
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace lps::comm {

struct ProtocolStats {
  std::vector<size_t> message_bits;  // one entry per message, in order

  size_t TotalBits() const {
    return std::accumulate(message_bits.begin(), message_bits.end(),
                           static_cast<size_t>(0));
  }
  int rounds() const { return static_cast<int>(message_bits.size()); }
};

}  // namespace lps::comm
