// The lower-bound reductions of Section 4, run end-to-end as executable
// protocols. Each reduction solves augmented indexing (or UR^n) through a
// streaming algorithm whose serialized memory is the protocol message, so
// the measured message sizes are exactly the space the lower bounds
// constrain, and the measured success rates validate the reductions'
// correctness arguments.
//
//   - Theorem 6: augmented indexing -> UR^n with exponentially-repeated
//     unit vectors; the symmetrized (Lemma 7) UR protocol's uniform output
//     lands in Bob's block with probability > 1/2.
//   - Theorem 7: UR^n -> finding duplicates: S = {2i + x_i},
//     T = {2i + 1 - y_i} inside a shared random n-subset P of [2n]; any
//     duplicate of the combined (n+1)-letter stream reveals a differing
//     index.
//   - Theorem 9: augmented indexing -> Lp heavy hitters in the strict
//     turnstile model with geometrically growing values ceil(b^{s-j}),
//     b = (1 - (2 phi)^p)^{-1/p}: the first non-zero coordinate is always
//     phi-heavy, so the smallest index of a valid heavy set decodes z_i.
//
// (Theorem 8 — the Lp-sampling lower bound on 0/±1 vectors — is the
// composition of Theorems 6 and 7 with the sampler-based duplicates
// algorithm; the bench measures it directly on the sampler.)
#pragma once

#include <cstdint>

#include "src/comm/augmented_indexing.h"
#include "src/comm/transcript.h"
#include "src/comm/universal_relation.h"

namespace lps::comm {

struct ReductionResult {
  bool ok = false;       ///< the protocol produced an answer
  bool correct = false;  ///< the answer matches the instance
  ProtocolStats stats;
};

/// Theorem 6: solves augmented indexing via the one-round symmetrized UR
/// protocol on vectors of dimension (2^s - 1) * 2^t. Keep s + t <= ~20.
ReductionResult RunAiViaUr(const AugmentedIndexingInstance& instance,
                           double ur_delta, uint64_t shared_seed);

/// Theorem 7: solves UR^n via the Theorem 3 duplicates finder.
ReductionResult RunUrViaDuplicates(const URInstance& instance, double delta,
                                   uint64_t shared_seed);

/// Theorem 9: solves augmented indexing via an Lp heavy hitters algorithm
/// in the strict turnstile model. `phi` and `p` parameterize the heavy
/// hitters algorithm; the instance's t should satisfy s * 2^t well below
/// the heavy-hitter universe budget.
ReductionResult RunAiViaHeavyHitters(const AugmentedIndexingInstance& instance,
                                     double p, double phi,
                                     uint64_t shared_seed);

}  // namespace lps::comm
