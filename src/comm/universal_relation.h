// The universal relation UR^n (Section 4.1): Alice holds x in {0,1}^n, Bob
// holds y in {0,1}^n with x != y; the last player to receive a message must
// output an index where they differ.
//
// Protocols implemented (Proposition 5):
//   - One round, O(log^2 n log 1/delta) bits: Alice serializes the counter
//     state of a Theorem 2 L0 sampler fed with x; Bob subtracts y (the
//     sketch is linear, the seed is shared randomness) and samples a
//     non-zero coordinate of x - y.
//   - Two rounds, O(log n log 1/delta) bits: round 1, Alice sends
//     constant-width per-level fingerprints of x over GF(8191) (O(log n)
//     bits total); Bob subtracts his own fingerprints, locates the deepest
//     level at which x - y survives, and derives a subsampling level k with
//     E[#surviving differences] ~ s/3. Round 2, Bob sends an s-sparse
//     recovery sketch of y restricted to that level; Alice subtracts her
//     restriction of x, recovers x - y's survivors exactly, and outputs one.
//   - The trivial deterministic one-round protocol (n bits), the reference
//     point for the randomized savings.
//
// Lemma 7 (output symmetrization: conjugating any protocol by a shared
// random permutation and XOR mask makes the output uniform over the
// differing indices) is available as a wrapper and is required by the
// Theorem 6 reduction.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/comm/transcript.h"
#include "src/util/status.h"

namespace lps::comm {

struct URInstance {
  uint64_t n = 0;
  std::vector<uint8_t> x;  // Alice's bits
  std::vector<uint8_t> y;  // Bob's bits
};

/// Instance with exactly `num_diffs` >= 1 differing positions; the common
/// part is random with density `density`.
URInstance MakeURInstance(uint64_t n, uint64_t num_diffs, double density,
                          uint64_t seed);

struct URResult {
  bool ok = false;        ///< protocol produced an index
  uint64_t index = 0;     ///< claimed differing index
  bool correct = false;   ///< x[index] != y[index] actually holds
  ProtocolStats stats;
};

/// One-round randomized protocol (Proposition 5, first part).
URResult RunOneRoundUR(const URInstance& instance, double delta,
                       uint64_t shared_seed);

/// Two-round randomized protocol (Proposition 5, second part).
URResult RunTwoRoundUR(const URInstance& instance, double delta,
                       uint64_t shared_seed);

/// Deterministic one-round baseline: Alice ships x verbatim (n bits).
URResult RunTrivialUR(const URInstance& instance);

/// Lemma 7: runs `protocol` on the instance conjugated by a shared random
/// permutation and XOR mask; the returned index is mapped back. If the
/// inner protocol errs with probability delta, the wrapped protocol outputs
/// a *uniform* differing index with probability >= 1 - delta.
URResult RunSymmetrized(
    const URInstance& instance, uint64_t shared_seed,
    const std::function<URResult(const URInstance&, uint64_t)>& protocol);

}  // namespace lps::comm
