#include "src/comm/universal_relation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/core/l0_sampler.h"
#include "src/hash/kwise.h"
#include "src/recovery/sparse_recovery.h"
#include "src/util/bits.h"
#include "src/util/check.h"
#include "src/util/random.h"
#include "src/util/serialize.h"

namespace lps::comm {

namespace {

// Small prime field for the two-round protocol's level fingerprints:
// constant bits per level, constant zero-test error per level (enough for a
// constant-factor survivor-count estimate; the recovery slack absorbs it).
constexpr uint64_t kSmallPrime = 8191;  // 2^13 - 1
constexpr int kSmallFieldBits = 13;
constexpr int kFingerprintReps = 5;

// Per-(rep, level) fingerprints over GF(8191) of the restriction of a bit
// vector to nested subsamples at rates 2^-level. Linear in the vector, so
// Bob can subtract his own from Alice's.
class SmallLevelFingerprints {
 public:
  SmallLevelFingerprints(uint64_t n, uint64_t seed)
      : n_(n), levels_(CeilLog2(std::max<uint64_t>(n, 2)) + 1),
        table_(static_cast<size_t>(kFingerprintReps) *
                   static_cast<size_t>(levels_),
               0) {
    for (int r = 0; r < kFingerprintReps; ++r) {
      level_hash_.emplace_back(
          2, Mix64(seed ^ (0x2c0ULL + static_cast<uint64_t>(r))));
      weight_hash_.emplace_back(
          4, Mix64(seed ^ (0x2d0ULL + static_cast<uint64_t>(r))));
    }
  }

  void Add(uint64_t i, uint64_t value) {
    for (int r = 0; r < kFingerprintReps; ++r) {
      const size_t rr = static_cast<size_t>(r);
      const double u = level_hash_[rr].UniformPositive(i);
      const int deepest =
          std::min(levels_ - 1, static_cast<int>(std::floor(-std::log2(u))));
      const uint64_t w =
          (value * (1 + weight_hash_[rr].Eval(i) % (kSmallPrime - 1))) %
          kSmallPrime;
      for (int l = 0; l <= deepest; ++l) {
        uint64_t& cell =
            table_[rr * static_cast<size_t>(levels_) + static_cast<size_t>(l)];
        cell = (cell + w) % kSmallPrime;
      }
    }
  }

  void SubtractFrom(const SmallLevelFingerprints& alice) {
    for (size_t c = 0; c < table_.size(); ++c) {
      table_[c] = (alice.table_[c] + kSmallPrime - table_[c]) % kSmallPrime;
    }
  }

  /// Median over reps of the deepest non-zero level; -1 if all zero.
  int MedianDeepestLevel() const {
    std::vector<int> deepest(kFingerprintReps, -1);
    for (int r = 0; r < kFingerprintReps; ++r) {
      for (int l = levels_ - 1; l >= 0; --l) {
        if (table_[static_cast<size_t>(r) * static_cast<size_t>(levels_) +
                   static_cast<size_t>(l)] != 0) {
          deepest[static_cast<size_t>(r)] = l;
          break;
        }
      }
    }
    std::nth_element(deepest.begin(), deepest.begin() + kFingerprintReps / 2,
                     deepest.end());
    return deepest[kFingerprintReps / 2];
  }

  void Serialize(BitWriter* writer) const {
    for (uint64_t cell : table_) writer->WriteBits(cell, kSmallFieldBits);
  }
  void Deserialize(BitReader* reader) {
    for (uint64_t& cell : table_) cell = reader->ReadBits(kSmallFieldBits);
  }

  int levels() const { return levels_; }

 private:
  uint64_t n_;
  int levels_;
  std::vector<uint64_t> table_;
  std::vector<hash::KWiseHash> level_hash_;
  std::vector<hash::KWiseHash> weight_hash_;
};

}  // namespace

URInstance MakeURInstance(uint64_t n, uint64_t num_diffs, double density,
                          uint64_t seed) {
  LPS_CHECK(num_diffs >= 1 && num_diffs <= n);
  Rng rng(seed);
  URInstance instance;
  instance.n = n;
  instance.x.resize(n);
  instance.y.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    instance.x[i] = rng.NextDouble() < density ? 1 : 0;
    instance.y[i] = instance.x[i];
  }
  // Flip y at num_diffs distinct random positions.
  std::vector<uint64_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  for (uint64_t j = 0; j < num_diffs; ++j) {
    std::swap(pool[j], pool[j + rng.Below(n - j)]);
    instance.y[pool[j]] ^= 1;
  }
  return instance;
}

URResult RunOneRoundUR(const URInstance& instance, double delta,
                       uint64_t shared_seed) {
  const uint64_t n = instance.n;
  URResult result;

  // Alice: L0-sample sketch of x (Theorem 2 machinery, shared seed).
  core::L0SamplerParams params;
  params.n = n;
  params.delta = delta;
  params.seed = shared_seed;
  core::L0Sampler alice(params);
  for (uint64_t i = 0; i < n; ++i) {
    if (instance.x[i]) alice.Update(i, +1);
  }
  BitWriter message;
  alice.Serialize(&message);
  result.stats.message_bits.push_back(message.bit_count());

  // Bob: same-seed sketch, install Alice's full state, subtract y, sample.
  core::L0Sampler bob(params);
  BitReader reader(message);
  bob.Deserialize(&reader);
  for (uint64_t i = 0; i < n; ++i) {
    if (instance.y[i]) bob.Update(i, -1);
  }
  auto sample = bob.Sample();
  if (!sample.ok()) return result;
  result.ok = true;
  result.index = sample.value().index;
  result.correct = instance.x[result.index] != instance.y[result.index];
  return result;
}

URResult RunTwoRoundUR(const URInstance& instance, double delta,
                       uint64_t shared_seed) {
  const uint64_t n = instance.n;
  URResult result;
  const uint64_t s = static_cast<uint64_t>(
      std::max(4.0, std::ceil(4 * std::log2(1 / delta)))) + 4;

  // Round 1 (Alice -> Bob): small-field level fingerprints of x.
  SmallLevelFingerprints alice_fp(n, shared_seed);
  for (uint64_t i = 0; i < n; ++i) {
    if (instance.x[i]) alice_fp.Add(i, 1);
  }
  BitWriter round1;
  alice_fp.Serialize(&round1);
  result.stats.message_bits.push_back(round1.bit_count());

  // Bob: fingerprint y, subtract, estimate the difference's support size,
  // choose the subsampling level k with E[survivors] ~ s/3.
  SmallLevelFingerprints bob_fp(n, shared_seed);
  for (uint64_t i = 0; i < n; ++i) {
    if (instance.y[i]) bob_fp.Add(i, 1);
  }
  {
    SmallLevelFingerprints alice_received(n, shared_seed);
    BitReader r1(round1);
    alice_received.Deserialize(&r1);
    bob_fp.SubtractFrom(alice_received);  // bob_fp now fingerprints x - y
  }
  const int med = bob_fp.MedianDeepestLevel();
  if (med < 0) return result;  // x == y according to fingerprints
  const double d_hat = std::max(1.0, std::log(2.0) * std::pow(2.0, med));
  const int k = std::max(
      0, CeilLog2(static_cast<uint64_t>(
             std::max(1.0, std::ceil(3.0 * d_hat / static_cast<double>(s))))));

  // Round 2 (Bob -> Alice): s-sparse recovery sketch of y restricted to the
  // level-k subsample (membership from the shared seed), plus k itself.
  hash::KWiseHash member(2, Mix64(shared_seed ^ 0x2f0ULL));
  const double rate = std::pow(2.0, -k);
  recovery::SparseRecovery bob_sketch(n, s, Mix64(shared_seed ^ 0x2f1ULL));
  for (uint64_t i = 0; i < n; ++i) {
    if (instance.y[i] && member.Uniform01(i) < rate) bob_sketch.Update(i, +1);
  }
  BitWriter round2;
  round2.WriteBits(static_cast<uint64_t>(k), 8);
  bob_sketch.Serialize(&round2);
  result.stats.message_bits.push_back(round2.bit_count());

  // Alice: subtract her restriction of x, recover the surviving differences.
  recovery::SparseRecovery alice_sketch(n, s, Mix64(shared_seed ^ 0x2f1ULL));
  BitReader r2(round2);
  const int k_received = static_cast<int>(r2.ReadBits(8));
  alice_sketch.Deserialize(&r2);
  const double rate_received = std::pow(2.0, -k_received);
  for (uint64_t i = 0; i < n; ++i) {
    if (instance.x[i] && member.Uniform01(i) < rate_received) {
      alice_sketch.Update(i, -1);  // sketch now holds y - x restricted
    }
  }
  auto recovered = alice_sketch.Recover();
  if (!recovered.ok() || recovered.value().empty()) return result;
  // Uniform choice among the recovered differing indices (shared seed).
  const auto& entries = recovered.value();
  const uint64_t pick = Mix64(shared_seed ^ 0x2f2ULL) % entries.size();
  result.ok = true;
  result.index = entries[pick].index;
  result.correct = instance.x[result.index] != instance.y[result.index];
  return result;
}

URResult RunTrivialUR(const URInstance& instance) {
  URResult result;
  result.stats.message_bits.push_back(instance.n);
  for (uint64_t i = 0; i < instance.n; ++i) {
    if (instance.x[i] != instance.y[i]) {
      result.ok = true;
      result.index = i;
      result.correct = true;
      return result;
    }
  }
  return result;
}

URResult RunSymmetrized(
    const URInstance& instance, uint64_t shared_seed,
    const std::function<URResult(const URInstance&, uint64_t)>& protocol) {
  const uint64_t n = instance.n;
  Rng rng(Mix64(shared_seed ^ 0x5e77ULL));
  std::vector<uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (uint64_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Below(i)]);
  }
  std::vector<uint8_t> mask(n);
  for (auto& b : mask) b = static_cast<uint8_t>(rng.Next() & 1);

  URInstance conjugated;
  conjugated.n = n;
  conjugated.x.resize(n);
  conjugated.y.resize(n);
  for (uint64_t j = 0; j < n; ++j) {
    conjugated.x[j] = instance.x[perm[j]] ^ mask[j];
    conjugated.y[j] = instance.y[perm[j]] ^ mask[j];
  }
  URResult result = protocol(conjugated, Mix64(shared_seed ^ 0x5e78ULL));
  if (result.ok) {
    result.index = perm[result.index];
    result.correct = instance.x[result.index] != instance.y[result.index];
  }
  return result;
}

}  // namespace lps::comm
