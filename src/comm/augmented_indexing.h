// The augmented indexing communication problem (Section 4, Lemma 6 [22]):
// Alice holds z in [2^t]^s; Bob holds an index i in [s] and the prefix
// z_1 .. z_{i-1}. Alice sends one message; Bob must output z_i. Any
// protocol with success 1 - delta > 3/(2 * 2^t) requires messages of
// Omega((1 - delta) s t) bits.
//
// This file provides instance generation; the reductions that *solve*
// augmented indexing through streaming algorithms (Theorems 6, 7, 9) live
// in reductions.h.
#pragma once

#include <cstdint>
#include <vector>

namespace lps::comm {

struct AugmentedIndexingInstance {
  int s = 0;                ///< string length
  int t = 0;                ///< symbols are in [0, 2^t)
  std::vector<uint32_t> z;  ///< Alice's string, z[j] in [0, 2^t)
  int index = 0;            ///< Bob's index (0-based); Bob knows z[0..index)
};

/// Uniform instance: z uniform, index uniform in [0, s).
AugmentedIndexingInstance MakeAugmentedIndexing(int s, int t, uint64_t seed);

}  // namespace lps::comm
