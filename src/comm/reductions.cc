#include "src/comm/reductions.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/duplicates/duplicates.h"
#include "src/heavy/heavy_hitters.h"
#include "src/util/bits.h"
#include "src/util/check.h"
#include "src/util/random.h"
#include "src/util/serialize.h"

namespace lps::comm {

ReductionResult RunAiViaUr(const AugmentedIndexingInstance& instance,
                           double ur_delta, uint64_t shared_seed) {
  const int s = instance.s;
  const int t = instance.t;
  LPS_CHECK(s + t <= 24);  // dimension (2^s - 1) 2^t must stay laptop-scale
  const uint64_t block_width = 1ULL << t;

  // Alice's u: block j (1-based) holds 2^{s-j} copies of e_{z_j}; Bob's v
  // matches u on the blocks j < i+1 he knows and is zero afterwards.
  URInstance ur;
  ur.n = ((1ULL << s) - 1) * block_width;
  ur.x.assign(ur.n, 0);
  ur.y.assign(ur.n, 0);
  std::vector<uint64_t> block_base(static_cast<size_t>(s) + 1, 0);
  for (int j = 1; j <= s; ++j) {
    block_base[static_cast<size_t>(j)] =
        block_base[static_cast<size_t>(j - 1)] +
        (j == 1 ? 0 : (1ULL << (s - (j - 1))) * block_width);
  }
  for (int j = 1; j <= s; ++j) {
    const uint64_t copies = 1ULL << (s - j);
    const uint64_t symbol = instance.z[static_cast<size_t>(j - 1)];
    for (uint64_t c = 0; c < copies; ++c) {
      const uint64_t pos =
          block_base[static_cast<size_t>(j)] + c * block_width + symbol;
      ur.x[pos] = 1;
      if (j - 1 < instance.index) ur.y[pos] = 1;  // Bob knows this prefix
    }
  }

  // Lemma 7 wrapper around the one-round protocol makes the output uniform
  // over the differing indices; more than half of them lie in block i+1.
  URResult ur_result = RunSymmetrized(
      ur, shared_seed, [ur_delta](const URInstance& inst, uint64_t seed) {
        return RunOneRoundUR(inst, ur_delta, seed);
      });

  ReductionResult result;
  result.stats = ur_result.stats;
  if (!ur_result.ok) return result;
  result.ok = true;
  // Decode (block, symbol) from the returned index; Bob outputs the symbol.
  int block = s;
  while (block >= 1 && ur_result.index < block_base[static_cast<size_t>(block)]) {
    --block;
  }
  const uint64_t offset =
      ur_result.index - block_base[static_cast<size_t>(block)];
  const uint32_t decoded = static_cast<uint32_t>(offset % block_width);
  result.correct =
      (block == instance.index + 1) &&
      decoded == instance.z[static_cast<size_t>(instance.index)];
  // (If the index landed in a later block the decoded symbol is z_j for
  // j > i; Bob cannot distinguish, so we charge it as an error unless it
  // coincidentally matches — matching blocks is the >1/2 probability event
  // the reduction relies on.)
  if (block != instance.index + 1 &&
      decoded == instance.z[static_cast<size_t>(instance.index)]) {
    result.correct = true;
  }
  return result;
}

ReductionResult RunUrViaDuplicates(const URInstance& instance, double delta,
                                   uint64_t shared_seed) {
  const uint64_t n = instance.n;
  ReductionResult result;

  // S = {2i + x_i}, T = {2i + 1 - y_i}: i differs iff S and T share one of
  // {2i, 2i+1}.
  // Shared randomness: a uniform n-subset P of [2n], with rank relabeling.
  Rng rng(Mix64(shared_seed ^ 0x7e07ULL));
  std::vector<uint64_t> pool(2 * n);
  for (uint64_t a = 0; a < 2 * n; ++a) pool[a] = a;
  for (uint64_t j = 0; j < n; ++j) {
    std::swap(pool[j], pool[j + rng.Below(2 * n - j)]);
  }
  std::vector<int64_t> rank(2 * n, -1);
  {
    std::vector<uint64_t> p(pool.begin(), pool.begin() + static_cast<int64_t>(n));
    std::sort(p.begin(), p.end());
    for (uint64_t r = 0; r < n; ++r) rank[p[r]] = static_cast<int64_t>(r);
  }

  // Alice feeds S cap P into the duplicates finder and ships its memory —
  // the full LinearSketch state (versioned header, params, counters), so
  // Bob needs nothing but the message and the shared randomness. Since
  // PR 3 that memory includes the dyadic candidate generators (Bob must
  // keep streaming AND query sub-linearly), so the measured message
  // exceeds the paper's counters-only quantity by a constant *factor*
  // determined by the structure's configuration (roughly
  // 1 + dyadic_rows * (log n + 1) / cs_rows per embedded sampler round),
  // not just the old additive header+params+seed term. Consumers compare
  // ratios or scaling shapes, which a configuration-constant factor does
  // not disturb; when the paper-exact bit count is the object of study,
  // account the dyadic share separately via DyadicSpaceBits().
  duplicates::DuplicateFinder::Params params{n, delta, 0,
                                             Mix64(shared_seed ^ 0x7e08ULL)};
  duplicates::DuplicateFinder alice(params);
  uint64_t alice_count = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t item = 2 * i + instance.x[i];
    if (rank[item] >= 0) {
      alice.ProcessItem(static_cast<uint64_t>(rank[item]));
      ++alice_count;
    }
  }
  BitWriter message;
  alice.Serialize(&message);
  // The count |S cap P| rides along (log(n+1) bits).
  message.WriteBounded(alice_count, n + 1);
  result.stats.message_bits.push_back(message.bit_count());

  // Bob restores Alice's state, checks the mass condition, feeds
  // n+1-|S cap P| of his own items, and queries.
  duplicates::DuplicateFinder bob(params);
  BitReader reader(message);
  bob.Deserialize(&reader);
  std::vector<uint64_t> bob_items;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t item = 2 * i + 1 - instance.y[i];
    if (rank[item] >= 0) bob_items.push_back(static_cast<uint64_t>(rank[item]));
  }
  if (alice_count + bob_items.size() < n + 1) {
    return result;  // FAIL: not enough mass in P this time
  }
  const uint64_t needed = n + 1 - alice_count;
  for (uint64_t j = 0; j < needed; ++j) bob.ProcessItem(bob_items[j]);
  auto found = bob.Find();
  if (!found.ok()) return result;
  result.ok = true;
  // Map the duplicate rank back to an item of [2n], then to the index.
  uint64_t original = 2 * n;  // sentinel
  for (uint64_t a = 0; a < 2 * n; ++a) {
    if (rank[a] == static_cast<int64_t>(found.value())) {
      original = a;
      break;
    }
  }
  LPS_CHECK(original < 2 * n);
  const uint64_t i = original / 2;
  result.correct = instance.x[i] != instance.y[i];
  return result;
}

ReductionResult RunAiViaHeavyHitters(const AugmentedIndexingInstance& instance,
                                     double p, double phi,
                                     uint64_t shared_seed) {
  const int s = instance.s;
  const int t = instance.t;
  const uint64_t block_width = 1ULL << t;
  const uint64_t n = static_cast<uint64_t>(s) * block_width;
  const double b = std::pow(1.0 - std::pow(2.0 * phi, p), -1.0 / p);

  heavy::CsHeavyHitters::Params params;
  params.n = n;
  params.p = p;
  params.phi = phi;
  params.strict_turnstile = true;
  params.seed = Mix64(shared_seed ^ 0x7e99ULL);

  // Alice builds u: coordinate (j-1) 2^t + z_j has value ceil(b^{s-j}).
  // Her serialized memory includes the dyadic candidate tree (Bob keeps
  // streaming, then queries sub-linearly) — a constant-factor, not
  // additive, overhead over the paper's counters-only message; see the
  // accounting note in RunUrViaDuplicates.
  heavy::CsHeavyHitters alice(params);
  for (int j = 1; j <= s; ++j) {
    const double value = std::ceil(std::pow(b, s - j));
    alice.Update(static_cast<uint64_t>(j - 1) * block_width +
                     instance.z[static_cast<size_t>(j - 1)],
                 value);
  }
  BitWriter message;
  alice.Serialize(&message);
  ReductionResult result;
  result.stats.message_bits.push_back(message.bit_count());

  // Bob subtracts the prefix he knows; the final vector is u - v >= 0
  // (strict turnstile) whose smallest non-zero coordinate is the heavy one.
  heavy::CsHeavyHitters bob(params);
  BitReader reader(message);
  bob.Deserialize(&reader);
  for (int j = 1; j <= instance.index; ++j) {
    const double value = std::ceil(std::pow(b, s - j));
    bob.Update(static_cast<uint64_t>(j - 1) * block_width +
                   instance.z[static_cast<size_t>(j - 1)],
               -value);
  }
  const std::vector<uint64_t> heavy_set = bob.Query();
  if (heavy_set.empty()) return result;
  result.ok = true;
  const uint64_t smallest = *std::min_element(heavy_set.begin(), heavy_set.end());
  const uint32_t decoded = static_cast<uint32_t>(smallest % block_width);
  const int block = static_cast<int>(smallest / block_width);  // 0-based j-1
  result.correct =
      block == instance.index &&
      decoded == instance.z[static_cast<size_t>(instance.index)];
  return result;
}

}  // namespace lps::comm
