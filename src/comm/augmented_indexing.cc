#include "src/comm/augmented_indexing.h"

#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::comm {

AugmentedIndexingInstance MakeAugmentedIndexing(int s, int t, uint64_t seed) {
  LPS_CHECK(s >= 1 && t >= 1 && t <= 31);
  Rng rng(seed);
  AugmentedIndexingInstance instance;
  instance.s = s;
  instance.t = t;
  instance.z.resize(static_cast<size_t>(s));
  for (auto& symbol : instance.z) {
    symbol = static_cast<uint32_t>(rng.Below(1ULL << t));
  }
  instance.index = static_cast<int>(rng.Below(static_cast<uint64_t>(s)));
  return instance;
}

}  // namespace lps::comm
