// lps.h — the single public include for the library.
//
//     #include "src/lps.h"
//
// is the supported way to consume the library: it exports the stable
// surface and nothing else. What you get:
//
//   Construction      SketchSpec + MakeSketch / SpecOf (one registry for
//                     all 21 kinds), plus the concrete classes for typed
//                     access (core::LpSampler, heavy::CsHeavyHitters, ...)
//   Ingestion         stream::StreamDriver (single-threaded batching),
//                     stream::ParallelPipeline (thread-per-shard runtime),
//                     stream::WindowManager (sliding windows by
//                     subtraction), io::StreamFeeder over io::ByteSource
//                     (async file/socket ingest overlapping read, decode,
//                     and sketching — see docs/io.md)
//   Queries           Query(sketch) -> QueryResult, the tagged answer
//                     type shared by the CLI, the server wire protocol,
//                     and the examples
//   Persistence       LinearSketch::Serialize/Deserialize,
//                     DeserializeAnySketch, WriteBitsToFile/
//                     ReadBitsFromFile
//   Workloads         stream::generators + trace reading/writing, and
//                     stream::ExactVector as the test oracle
//
// Deeper internal headers (src/sketch/*, src/field/*, src/recovery/*,
// ...) remain includable but are NOT a stability surface; new code should
// include this file only. The multi-tenant server layers live separately
// under src/server/ — they are consumers of this surface, not part of it.
#pragma once

#include "src/api/query_result.h"
#include "src/api/sketch_spec.h"
#include "src/apps/moment_estimation.h"
#include "src/core/ako_sampler.h"
#include "src/core/fis_l0_sampler.h"
#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/duplicates/duplicates.h"
#include "src/duplicates/positive_finder.h"
#include "src/heavy/heavy_hitters.h"
#include "src/io/bits_io.h"
#include "src/io/byte_source.h"
#include "src/io/stream_feeder.h"
#include "src/io/update_decoder.h"
#include "src/norm/l0_norm.h"
#include "src/norm/lp_norm.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/parallel_pipeline.h"
#include "src/stream/stream_driver.h"
#include "src/stream/trace.h"
#include "src/stream/update.h"
#include "src/stream/window_manager.h"
#include "src/util/serialize.h"
#include "src/util/status.h"
