#include "src/duplicates/positive_finder.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::duplicates {

namespace {

core::LpSamplerParams SamplerParams(const PositiveFinder::Params& p) {
  core::LpSamplerParams params;
  params.n = p.n;
  params.p = 1.0;
  params.eps = 0.5;
  // As in SparseDuplicateFinder: the dense path's positive fraction can be
  // as low as 2/5, so give the sampler a halved delta budget.
  params.delta = p.delta / 2;
  params.repetitions = p.repetitions;
  params.seed = Mix64(p.seed ^ 0x90f1ULL);
  return params;
}

}  // namespace

PositiveFinder::PositiveFinder(Params params)
    : recovery_(params.n, std::max<uint64_t>(2, 5 * params.s_budget),
                Mix64(params.seed ^ 0x90f0ULL)),
      sampler_(SamplerParams(params)) {}

void PositiveFinder::Update(uint64_t i, int64_t delta) {
  total_ += delta;
  recovery_.Update(i, delta);
  sampler_.Update(i, delta);
}

PositiveFinder::Outcome PositiveFinder::Find() const {
  // Exact path first: if x is within the recovery budget we answer
  // deterministically (this also certifies kNone).
  auto recovered = recovery_.Recover();
  if (recovered.ok()) {
    for (const auto& entry : recovered.value()) {
      if (entry.value > 0) return {Kind::kFound, entry.index};
    }
    return {Kind::kNone, 0};
  }
  // Dense: sample. When Deficit() < 0 a positive coordinate carries more
  // than half the L1 mass; when Deficit() >= 0 density still guarantees a
  // >= 2/5 positive fraction (Theorem 4's argument).
  const double r = sampler_.NormEstimate();
  if (r > 0) {
    for (int v = 0; v < sampler_.repetitions(); ++v) {
      auto res = sampler_.round(v).Recover(r);
      if (res.ok() && res.value().estimate > 0) {
        return {Kind::kFound, res.value().index};
      }
    }
  }
  return {Kind::kFail, 0};
}

size_t PositiveFinder::SpaceBits(int bits_per_counter) const {
  return 64 + recovery_.SpaceBits() + sampler_.SpaceBits(bits_per_counter);
}

}  // namespace lps::duplicates
