#include "src/duplicates/positive_finder.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::duplicates {

namespace {

core::LpSamplerParams SamplerParams(const PositiveFinder::Params& p) {
  core::LpSamplerParams params;
  params.n = p.n;
  params.p = 1.0;
  params.eps = 0.5;
  // As in SparseDuplicateFinder: the dense path's positive fraction can be
  // as low as 2/5, so give the sampler a halved delta budget.
  params.delta = p.delta / 2;
  params.repetitions = p.repetitions;
  params.seed = Mix64(p.seed ^ 0x90f1ULL);
  return params;
}

}  // namespace

PositiveFinder::PositiveFinder(Params params)
    : params_(params),
      recovery_(params.n, std::max<uint64_t>(2, 5 * params.s_budget),
                Mix64(params.seed ^ 0x90f0ULL)),
      sampler_(SamplerParams(params)) {}

void PositiveFinder::Update(uint64_t i, int64_t delta) {
  total_ += delta;
  recovery_.Update(i, delta);
  sampler_.Update(i, delta);
}

void PositiveFinder::UpdateBatch(const stream::Update* updates, size_t count) {
  for (size_t t = 0; t < count; ++t) total_ += updates[t].delta;
  recovery_.UpdateBatch(updates, count);
  sampler_.UpdateBatch(updates, count);
}

void PositiveFinder::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const PositiveFinder*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->params_.n == params_.n &&
            o->params_.s_budget == params_.s_budget &&
            o->params_.delta == params_.delta &&
            o->params_.repetitions == params_.repetitions &&
            o->params_.seed == params_.seed);
  total_ += o->total_;
  recovery_.Merge(o->recovery_);
  sampler_.Merge(o->sampler_);
}

void PositiveFinder::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const PositiveFinder*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->params_.n == params_.n &&
            o->params_.s_budget == params_.s_budget &&
            o->params_.delta == params_.delta &&
            o->params_.repetitions == params_.repetitions &&
            o->params_.seed == params_.seed);
  total_ -= o->total_;
  recovery_.MergeNegated(o->recovery_);
  sampler_.MergeNegated(o->sampler_);
}

void PositiveFinder::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteU64(params_.n);
  writer->WriteU64(params_.s_budget);
  writer->WriteDouble(params_.delta);
  writer->WriteBits(static_cast<uint64_t>(params_.repetitions), 32);
  writer->WriteU64(params_.seed);
  writer->WriteU64(static_cast<uint64_t>(total_));
  recovery_.SerializeCounters(writer);
  sampler_.SerializeCounters(writer);
}

void PositiveFinder::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  Params params;
  params.n = reader->ReadU64();
  params.s_budget = reader->ReadU64();
  params.delta = reader->ReadDouble();
  params.repetitions = static_cast<int>(reader->ReadBits(32));
  params.seed = reader->ReadU64();
  *this = PositiveFinder(params);
  total_ = static_cast<int64_t>(reader->ReadU64());
  recovery_.DeserializeCounters(reader);
  sampler_.DeserializeCounters(reader);
}

void PositiveFinder::Reset() {
  total_ = 0;
  recovery_.Reset();
  sampler_.Reset();
}

PositiveFinder::Outcome PositiveFinder::Find() const {
  // Exact path first: if x is within the recovery budget we answer
  // deterministically (this also certifies kNone).
  auto recovered = recovery_.Recover();
  if (recovered.ok()) {
    for (const auto& entry : recovered.value()) {
      if (entry.value > 0) return {Kind::kFound, entry.index};
    }
    return {Kind::kNone, 0};
  }
  // Dense: sample. When Deficit() < 0 a positive coordinate carries more
  // than half the L1 mass; when Deficit() >= 0 density still guarantees a
  // >= 2/5 positive fraction (Theorem 4's argument).
  const double r = sampler_.NormEstimate();
  if (r > 0) {
    for (int v = 0; v < sampler_.repetitions(); ++v) {
      auto res = sampler_.round(v).Recover(r);
      if (res.ok() && res.value().estimate > 0) {
        return {Kind::kFound, res.value().index};
      }
    }
  }
  return {Kind::kFail, 0};
}

size_t PositiveFinder::SpaceBits(int bits_per_counter) const {
  return 64 + recovery_.SpaceBits() + sampler_.SpaceBits(bits_per_counter);
}

}  // namespace lps::duplicates
