// The generalized form of Theorems 3 and 4 (remark at the end of
// Section 3): given an arbitrary update stream for x in Z^n, find an index
// with x_i > 0.
//
// Let s = -sum_i x_i (maintained exactly in one counter). If s < 0 a
// positive coordinate must exist and the Theorem 3 sampler finds one; if
// s >= 0 one does not necessarily exist and the Theorem 4 combination of
// exact sparse recovery (budgeted by the caller) and sampling either finds
// one, certifies none exists, or fails with probability <= delta.
#pragma once

#include <cstdint>

#include "src/core/lp_sampler.h"
#include "src/recovery/sparse_recovery.h"
#include "src/stream/linear_sketch.h"

namespace lps::duplicates {

class PositiveFinder : public LinearSketch {
 public:
  struct Params {
    uint64_t n = 0;
    uint64_t s_budget = 4;  ///< sparse recovery handles up to 5*s_budget
    double delta = 0.25;
    int repetitions = 0;
    uint64_t seed = 0;
  };

  enum class Kind { kFound, kNone, kFail };
  struct Outcome {
    Kind kind;
    uint64_t index = 0;  ///< valid when kind == kFound
  };

  explicit PositiveFinder(Params params);

  void Update(uint64_t i, int64_t delta);

  /// Batched ingestion (exact total plus both sub-sketches' fast paths).
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  Outcome Find() const;

  /// s = -sum_i x_i, known exactly.
  int64_t Deficit() const { return -total_; }

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kPositiveFinder; }

  size_t SpaceBits(int bits_per_counter) const;

 private:
  Params params_;
  int64_t total_ = 0;
  recovery::SparseRecovery recovery_;
  core::LpSampler sampler_;
};

}  // namespace lps::duplicates
