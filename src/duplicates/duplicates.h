// Finding duplicates in data streams (Section 3).
//
// All three algorithms view the letter stream over alphabet [n] through the
// reduction of Theorem 3: x_i = (#occurrences of i) - 1, materialized by
// updates (i, -1) for every i followed by (letter, +1) per stream item.
//
//   - DuplicateFinder (Theorem 3): stream length n+1. sum_i x_i = 1, so a
//     perfect L1 sample is positive with probability > 1/2; an L1 sampler
//     round with constant relative error that returns a positive estimate
//     exposes a duplicate. O(log^2 n log(1/delta)) bits.
//   - SparseDuplicateFinder (Theorem 4): stream length n-s. Runs an exact
//     5s-sparse recovery in parallel with the sampler; if recovery
//     succeeds the answer is exact (in particular NO-DUPLICATE is certified
//     with probability 1), otherwise ||x||_1^+ > 2s and the sampler path
//     fires. O(s log n + log^2 n log(1/delta)) bits.
//   - OversampledDuplicateFinder (Section 3, length n+s): samples
//     4*ceil(n/s) uniform stream positions and watches for re-appearances
//     when n/s < log2 n (space (n/s) log n), otherwise delegates to
//     Theorem 3 (space log^2 n) — O(min{log^2 n, (n/s) log n}) bits.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/lp_sampler.h"
#include "src/recovery/sparse_recovery.h"
#include "src/stream/linear_sketch.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace lps::duplicates {

/// Theorem 3. The alphabet is [0, n); the stream should have length >= n+1
/// (more precisely: any length making sum_i x_i > 0 biases the sampler
/// toward duplicates; see also PositiveFinder for the general form).
class DuplicateFinder : public LinearSketch {
 public:
  struct Params {
    uint64_t n = 0;
    double delta = 0.25;   ///< FAIL probability target
    int repetitions = 0;   ///< underlying L1 sampler rounds; 0 => auto
    uint64_t seed = 0;
  };

  explicit DuplicateFinder(Params params);

  /// Processes one stream letter.
  void ProcessItem(uint64_t letter) { sampler_.Update(letter, +1); }

  /// Raw vector-level ingestion (the reduction's x view); letters are
  /// (letter, +1) updates on top of the built-in (i, -1) initialization.
  void UpdateBatch(const stream::Update* updates, size_t count) override {
    sampler_.UpdateBatch(updates, count);
  }

  /// A letter that appears at least twice, or Status::Failed. Wrong answers
  /// have low probability (the sampled estimate would need the wrong sign).
  Result<uint64_t> Find() const;

  size_t SpaceBits(int bits_per_counter) const {
    return sampler_.SpaceBits(bits_per_counter);
  }

  /// Memory-content transfer for the reduction of Theorem 7: Alice
  /// serializes after her half of the stream; Bob (constructed with the
  /// same params) deserializes and continues feeding items.
  void SerializeCounters(BitWriter* writer) const {
    sampler_.SerializeCounters(writer);
  }
  void DeserializeCounters(BitReader* reader) {
    sampler_.DeserializeCounters(reader);
  }

  // LinearSketch contract. Merge accounts for the (i, -1) initialization
  // both replicas fed at construction: after adding the replica's state it
  // cancels the duplicated initialization, so the merged sketch holds
  // exactly init + lettersA + lettersB (up to floating-point
  // reassociation in the scaled counters).
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kDuplicateFinder; }
  /// The construction parameters — what SpecOf reads.
  const Params& params() const { return params_; }

 private:
  Params params_;
  core::LpSampler sampler_;
};

/// Theorem 4: stream of length n - s.
class SparseDuplicateFinder : public LinearSketch {
 public:
  struct Params {
    uint64_t n = 0;
    uint64_t s = 0;       ///< n minus the stream length
    double delta = 0.25;
    int repetitions = 0;
    uint64_t seed = 0;
  };

  enum class Kind { kDuplicate, kNoDuplicate, kFail };
  struct Outcome {
    Kind kind;
    uint64_t duplicate = 0;  ///< valid when kind == kDuplicate
    bool exact = false;      ///< true when decided by sparse recovery
  };

  explicit SparseDuplicateFinder(Params params);

  void ProcessItem(uint64_t letter);

  /// Raw vector-level ingestion (both the recovery and the sampler).
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  Outcome Find() const;

  size_t SpaceBits(int bits_per_counter) const;

  // LinearSketch contract; Merge cancels the duplicated (i, -1)
  // initialization exactly as in DuplicateFinder (field-exact on the
  // recovery side).
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override {
    return SketchKind::kSparseDuplicateFinder;
  }

 private:
  Params params_;
  recovery::SparseRecovery recovery_;
  core::LpSampler sampler_;
};

/// Section 3, stream length n + s (s >= 1): strategy auto-selection between
/// position sampling and Theorem 3 at the n/s = log2 n crossover.
class OversampledDuplicateFinder {
 public:
  struct Params {
    uint64_t n = 0;
    uint64_t s = 1;        ///< stream length is n + s
    double delta = 0.25;
    int repetitions = 0;   ///< only used by the Theorem 3 strategy
    uint64_t seed = 0;
    /// Force a strategy for ablation benches: 0 = auto, 1 = sampling,
    /// 2 = Theorem 3.
    int force_strategy = 0;
  };

  enum class Strategy { kPositionSampling, kL1Sampler };

  explicit OversampledDuplicateFinder(Params params);

  void ProcessItem(uint64_t letter);

  Result<uint64_t> Find() const;

  Strategy strategy() const { return strategy_; }
  size_t SpaceBits(int bits_per_counter = 64) const;

 private:
  uint64_t n_;
  Strategy strategy_;
  // Position-sampling state.
  std::vector<uint64_t> positions_;  // sorted sampled positions
  size_t next_position_ = 0;
  uint64_t clock_ = 0;
  std::unordered_map<uint64_t, int> watched_;
  Result<uint64_t> found_ = Status::Failed("no duplicate seen");
  // Theorem 3 state.
  std::unique_ptr<DuplicateFinder> finder_;
};

}  // namespace lps::duplicates
