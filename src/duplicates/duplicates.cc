#include "src/duplicates/duplicates.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/util/bits.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::duplicates {

namespace {

core::LpSamplerParams L1Params(uint64_t n, double delta, int repetitions,
                               uint64_t seed) {
  core::LpSamplerParams params;
  params.n = n;
  params.p = 1.0;
  // Theorem 3 runs the sampler with relative error 1/2; each round that
  // recovers yields a positive estimate with constant probability, so
  // O(log 1/delta) *productive* rounds suffice.
  params.eps = 0.5;
  params.delta = delta;
  params.repetitions = repetitions;
  params.seed = seed;
  return params;
}

// The reduction's initialization / its cancellation as one batch, so the
// constructor, Reset, and Merge all go through the vectorized fast path.
stream::UpdateStream ConstantStream(uint64_t n, int64_t delta) {
  stream::UpdateStream updates(n);
  for (uint64_t i = 0; i < n; ++i) updates[i] = {i, delta};
  return updates;
}

template <typename Sink>
void FeedInitialMinusOnes(uint64_t n, Sink* sink) {
  const stream::UpdateStream init = ConstantStream(n, -1);
  sink->UpdateBatch(init.data(), init.size());
}

}  // namespace

DuplicateFinder::DuplicateFinder(Params params)
    : params_(params),
      sampler_(L1Params(params.n, params.delta, params.repetitions,
                        params.seed)) {
  FeedInitialMinusOnes(params.n, &sampler_);
}

void DuplicateFinder::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const DuplicateFinder*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->params_.n == params_.n && o->params_.delta == params_.delta &&
            o->params_.repetitions == params_.repetitions &&
            o->params_.seed == params_.seed);
  sampler_.Merge(o->sampler_);
  // Both replicas fed the (i, -1) initialization at construction; cancel
  // the second copy so the merged vector is init + lettersA + lettersB.
  const stream::UpdateStream cancel = ConstantStream(params_.n, +1);
  sampler_.UpdateBatch(cancel.data(), cancel.size());
}

void DuplicateFinder::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const DuplicateFinder*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->params_.n == params_.n && o->params_.delta == params_.delta &&
            o->params_.repetitions == params_.repetitions &&
            o->params_.seed == params_.seed);
  sampler_.MergeNegated(o->sampler_);
  // The two (i, -1) initialization feeds cancel in the subtraction, so
  // re-feed one copy: the difference is again init + (lettersA - lettersB)
  // — a well-formed finder over the subtracted letter multiset (for a
  // window, exactly the letters the window saw).
  FeedInitialMinusOnes(params_.n, &sampler_);
}

void DuplicateFinder::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteU64(params_.n);
  writer->WriteDouble(params_.delta);
  writer->WriteBits(static_cast<uint64_t>(params_.repetitions), 32);
  writer->WriteU64(params_.seed);
  SerializeCounters(writer);
}

void DuplicateFinder::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  Params params;
  params.n = reader->ReadU64();
  params.delta = reader->ReadDouble();
  params.repetitions = static_cast<int>(reader->ReadBits(32));
  params.seed = reader->ReadU64();
  // Rebuild the sampler directly instead of through the constructor: the
  // (i, -1) initialization it would feed is overwritten by the restored
  // counters anyway, and skipping it keeps load O(state), not O(n).
  params_ = params;
  sampler_ = core::LpSampler(
      L1Params(params.n, params.delta, params.repetitions, params.seed));
  DeserializeCounters(reader);
}

void DuplicateFinder::Reset() {
  sampler_.Reset();
  FeedInitialMinusOnes(params_.n, &sampler_);
}

Result<uint64_t> DuplicateFinder::Find() const {
  // Scan the sampler's rounds: the first recovered sample with a positive
  // estimate is a duplicate (x_i >= 1 there unless the estimate's sign is
  // wrong, a low-probability event). Rounds with negative estimates are
  // treated as this trial's FAIL, exactly as in Theorem 3's proof.
  const double r = sampler_.NormEstimate();
  if (r <= 0) return Status::Failed("zero norm estimate");
  for (int v = 0; v < sampler_.repetitions(); ++v) {
    auto res = sampler_.round(v).Recover(r);
    if (res.ok() && res.value().estimate > 0) return res.value().index;
  }
  return Status::Failed("no positive sample");
}

SparseDuplicateFinder::SparseDuplicateFinder(Params params)
    : params_(params),
      recovery_(params.n, std::max<uint64_t>(2, 5 * params.s),
                Mix64(params.seed ^ 0xdead5ULL)),
      // The DENSE fallback only guarantees a 2/5 positive fraction (vs
      // Theorem 3's > 1/2), so the sampler gets a halved delta budget —
      // i.e. ~50% more rounds — to hold the overall failure at delta.
      sampler_(L1Params(params.n, params.delta / 2, params.repetitions,
                        Mix64(params.seed ^ 0xdead6ULL))) {
  FeedInitialMinusOnes(params.n, &recovery_);
  FeedInitialMinusOnes(params.n, &sampler_);
}

void SparseDuplicateFinder::ProcessItem(uint64_t letter) {
  recovery_.Update(letter, +1);
  sampler_.Update(letter, +1);
}

void SparseDuplicateFinder::UpdateBatch(const stream::Update* updates,
                                        size_t count) {
  recovery_.UpdateBatch(updates, count);
  sampler_.UpdateBatch(updates, count);
}

void SparseDuplicateFinder::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const SparseDuplicateFinder*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->params_.n == params_.n && o->params_.s == params_.s &&
            o->params_.delta == params_.delta &&
            o->params_.repetitions == params_.repetitions &&
            o->params_.seed == params_.seed);
  recovery_.Merge(o->recovery_);
  sampler_.Merge(o->sampler_);
  // Cancel the duplicated (i, -1) initialization (see DuplicateFinder).
  const stream::UpdateStream cancel = ConstantStream(params_.n, +1);
  recovery_.UpdateBatch(cancel.data(), cancel.size());
  sampler_.UpdateBatch(cancel.data(), cancel.size());
}

void SparseDuplicateFinder::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const SparseDuplicateFinder*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->params_.n == params_.n && o->params_.s == params_.s &&
            o->params_.delta == params_.delta &&
            o->params_.repetitions == params_.repetitions &&
            o->params_.seed == params_.seed);
  recovery_.MergeNegated(o->recovery_);
  sampler_.MergeNegated(o->sampler_);
  // The initialization feeds cancelled in the subtraction; re-feed one
  // copy (see DuplicateFinder::MergeNegated).
  FeedInitialMinusOnes(params_.n, &recovery_);
  FeedInitialMinusOnes(params_.n, &sampler_);
}

void SparseDuplicateFinder::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteU64(params_.n);
  writer->WriteU64(params_.s);
  writer->WriteDouble(params_.delta);
  writer->WriteBits(static_cast<uint64_t>(params_.repetitions), 32);
  writer->WriteU64(params_.seed);
  recovery_.SerializeCounters(writer);
  sampler_.SerializeCounters(writer);
}

void SparseDuplicateFinder::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  Params params;
  params.n = reader->ReadU64();
  params.s = reader->ReadU64();
  params.delta = reader->ReadDouble();
  params.repetitions = static_cast<int>(reader->ReadBits(32));
  params.seed = reader->ReadU64();
  // As in DuplicateFinder::Deserialize: skip the constructor's O(n)
  // initialization feed, which the restored counters would overwrite.
  // Member construction mirrors the constructor's seed derivation.
  params_ = params;
  recovery_ = recovery::SparseRecovery(params.n,
                                       std::max<uint64_t>(2, 5 * params.s),
                                       Mix64(params.seed ^ 0xdead5ULL));
  sampler_ = core::LpSampler(L1Params(params.n, params.delta / 2,
                                      params.repetitions,
                                      Mix64(params.seed ^ 0xdead6ULL)));
  recovery_.DeserializeCounters(reader);
  sampler_.DeserializeCounters(reader);
}

void SparseDuplicateFinder::Reset() {
  recovery_.Reset();
  sampler_.Reset();
  FeedInitialMinusOnes(params_.n, &recovery_);
  FeedInitialMinusOnes(params_.n, &sampler_);
}

SparseDuplicateFinder::Outcome SparseDuplicateFinder::Find() const {
  auto recovered = recovery_.Recover();
  if (recovered.ok()) {
    // Exact knowledge of x: any positive coordinate is a duplicate; no
    // positive coordinate certifies NO-DUPLICATE (probability 1 on
    // duplicate-free streams, whose x is exactly s-sparse).
    for (const auto& entry : recovered.value()) {
      if (entry.value > 0) return {Kind::kDuplicate, entry.index, true};
    }
    return {Kind::kNoDuplicate, 0, true};
  }
  // DENSE: ||x||_1^+ + ||x||_1^- > 5s while their difference is -s, so the
  // positive mass is > 2/5 of ||x||_1 and the sampler path fires.
  const double r = sampler_.NormEstimate();
  if (r > 0) {
    for (int v = 0; v < sampler_.repetitions(); ++v) {
      auto res = sampler_.round(v).Recover(r);
      if (res.ok() && res.value().estimate > 0) {
        return {Kind::kDuplicate, res.value().index, false};
      }
    }
  }
  return {Kind::kFail, 0, false};
}

size_t SparseDuplicateFinder::SpaceBits(int bits_per_counter) const {
  return recovery_.SpaceBits() + sampler_.SpaceBits(bits_per_counter);
}

OversampledDuplicateFinder::OversampledDuplicateFinder(Params params)
    : n_(params.n) {
  LPS_CHECK(params.s >= 1);
  const double ratio = static_cast<double>(params.n) /
                       static_cast<double>(params.s);
  const bool sample_positions =
      params.force_strategy == 1 ||
      (params.force_strategy == 0 &&
       ratio < static_cast<double>(CeilLog2(std::max<uint64_t>(params.n, 2))));
  if (sample_positions) {
    strategy_ = Strategy::kPositionSampling;
    const uint64_t length = params.n + params.s;
    const uint64_t k = 4 * static_cast<uint64_t>(std::ceil(ratio));
    Rng rng(params.seed);
    positions_.reserve(k);
    for (uint64_t j = 0; j < k; ++j) positions_.push_back(rng.Below(length));
    std::sort(positions_.begin(), positions_.end());
  } else {
    strategy_ = Strategy::kL1Sampler;
    finder_ = std::make_unique<DuplicateFinder>(DuplicateFinder::Params{
        params.n, params.delta, params.repetitions, params.seed});
  }
}

void OversampledDuplicateFinder::ProcessItem(uint64_t letter) {
  if (strategy_ == Strategy::kL1Sampler) {
    finder_->ProcessItem(letter);
    return;
  }
  // A watched letter re-appearing is a duplicate by construction (it was
  // sampled at a strictly earlier position).
  if (!found_.ok()) {
    auto it = watched_.find(letter);
    if (it != watched_.end()) found_ = letter;
  }
  while (next_position_ < positions_.size() &&
         positions_[next_position_] == clock_) {
    ++watched_[letter];
    ++next_position_;
  }
  ++clock_;
}

Result<uint64_t> OversampledDuplicateFinder::Find() const {
  if (strategy_ == Strategy::kL1Sampler) return finder_->Find();
  return found_;
}

size_t OversampledDuplicateFinder::SpaceBits(int bits_per_counter) const {
  if (strategy_ == Strategy::kL1Sampler) {
    return finder_->SpaceBits(bits_per_counter);
  }
  // Sampled positions plus watched letters, log n bits each.
  const size_t log_n = static_cast<size_t>(BitWidth(std::max<uint64_t>(n_, 2)));
  return (positions_.size() + watched_.size()) * log_n;
}

}  // namespace lps::duplicates
