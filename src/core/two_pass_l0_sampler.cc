#include "src/core/two_pass_l0_sampler.h"

#include <algorithm>
#include <cmath>

#include "src/util/bits.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::core {

TwoPassL0Sampler::TwoPassL0Sampler(Params params)
    : n_(params.n),
      s_(params.s != 0
             ? params.s
             : static_cast<uint64_t>(
                   std::max(4.0, std::ceil(4 * std::log2(1 / params.delta)))) +
                   4),
      seed_(params.seed),
      estimator_(params.n, 12, Mix64(params.seed ^ 0x2Aa55ULL)),
      member_(2, Mix64(params.seed ^ 0x2Aa56ULL)),
      recovery_(params.n, s_, Mix64(params.seed ^ 0x2Aa57ULL)) {
  LPS_CHECK(params.n >= 1);
}

void TwoPassL0Sampler::UpdateFirstPass(uint64_t i, int64_t delta) {
  LPS_CHECK(!first_pass_done_);
  estimator_.Update(i, delta);
}

void TwoPassL0Sampler::FinishFirstPass() {
  LPS_CHECK(!first_pass_done_);
  first_pass_done_ = true;
  const double l0 = estimator_.Estimate();
  if (l0 <= static_cast<double>(s_) / 2) {
    level_ = 0;  // support fits the recovery budget outright
    return;
  }
  // Subsample at rate 2^-level so E[survivors] ~ s/2; the constant-factor
  // slack of the estimator is absorbed by s/2 vs s.
  level_ = std::max(
      0, CeilLog2(static_cast<uint64_t>(
             std::ceil(2.0 * l0 / static_cast<double>(s_)))));
}

void TwoPassL0Sampler::UpdateSecondPass(uint64_t i, int64_t delta) {
  LPS_CHECK(first_pass_done_);
  const double rate = std::pow(2.0, -level_);
  if (member_.Uniform01(i) < rate) recovery_.Update(i, delta);
}

Result<SampleResult> TwoPassL0Sampler::Sample() const {
  LPS_CHECK(first_pass_done_);
  auto recovered = recovery_.Recover();
  if (!recovered.ok()) {
    return Status::Failed("subsample not sparse (estimate was low)");
  }
  if (recovered.value().empty()) {
    return Status::Failed("empty subsample (zero vector or estimate high)");
  }
  const auto& entries = recovered.value();
  const uint64_t pick = Mix64(seed_ ^ 0x2Aa58ULL) % entries.size();
  return SampleResult{entries[pick].index,
                      static_cast<double>(entries[pick].value)};
}

size_t TwoPassL0Sampler::SpaceBits() const {
  return estimator_.SpaceBits() + recovery_.SpaceBits() + member_.SeedBits();
}

}  // namespace lps::core
