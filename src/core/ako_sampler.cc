#include "src/core/ako_sampler.h"

#include <algorithm>
#include <cmath>

#include "src/util/bits.h"

namespace lps::core {

LpSamplerParams AkoSampler::AkoResolve(LpSamplerParams params) {
  params.k = 2;  // pairwise independent scaling factors
  if (params.m == 0) {
    const int log_n = std::max(1, CeilLog2(std::max<uint64_t>(params.n, 2)));
    params.m = std::max(
        4, static_cast<int>(std::ceil(2.0 * std::pow(params.eps, -params.p) *
                                      static_cast<double>(log_n))));
  }
  return params;
}

AkoSampler::AkoSampler(LpSamplerParams params)
    : inner_(AkoResolve(std::move(params))) {}

}  // namespace lps::core
