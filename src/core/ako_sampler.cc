#include "src/core/ako_sampler.h"

#include <algorithm>
#include <cmath>

#include "src/util/bits.h"

namespace lps::core {

LpSamplerParams AkoSampler::AkoResolve(LpSamplerParams params) {
  params.k = 2;  // pairwise independent scaling factors
  if (params.m == 0) {
    const int log_n = std::max(1, CeilLog2(std::max<uint64_t>(params.n, 2)));
    params.m = std::max(
        4, static_cast<int>(std::ceil(2.0 * std::pow(params.eps, -params.p) *
                                      static_cast<double>(log_n))));
  }
  return params;
}

AkoSampler::AkoSampler(LpSamplerParams params)
    : inner_(AkoResolve(std::move(params))) {}

void AkoSampler::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const AkoSampler*>(&other);
  LPS_CHECK(o != nullptr);
  inner_.Merge(o->inner_);
}

void AkoSampler::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const AkoSampler*>(&other);
  LPS_CHECK(o != nullptr);
  inner_.MergeNegated(o->inner_);
}

void AkoSampler::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  inner_.Serialize(writer);
}

void AkoSampler::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  inner_.Deserialize(reader);
}

}  // namespace lps::core
