// Baseline: a Frahling-Indyk-Sohler-style L0 sampler [12] with the
// O(log^3 n)-bit space shape the paper's Theorem 2 improves to O(log^2 n).
//
// Structure: log n + 1 subsampling levels (level l keeps coordinates at
// rate 2^-l); each level hashes survivors into Theta(log n) buckets, each
// bucket a 1-sparse detector of O(log n) bits. Sampling scans levels from
// the *sparsest* down and returns a uniform choice among the valid 1-sparse
// buckets of the first productive level. Space: log n levels x log n
// buckets x O(log n) bits = O(log^3 n).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/sampler.h"
#include "src/hash/kwise.h"
#include "src/stream/linear_sketch.h"
#include "src/util/status.h"

#include "src/recovery/one_sparse.h"

namespace lps::core {

class FisL0Sampler : public LinearSketch {
 public:
  /// Universe [0, n); `buckets` = 0 picks Theta(log n).
  FisL0Sampler(uint64_t n, uint64_t seed, int buckets = 0);

  void Update(uint64_t i, int64_t delta);

  /// Batched ingestion (plain per-update loop: each update touches a
  /// different bucket chain, so there is nothing to hoist).
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  Result<SampleResult> Sample() const;

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  SketchKind kind() const override { return SketchKind::kFisL0Sampler; }

  size_t SpaceBits() const override;

 private:
  int DeepestLevel(uint64_t i) const;

  uint64_t n_;
  int levels_;
  int buckets_;
  uint64_t seed_;
  hash::KWiseHash level_hash_;
  std::vector<hash::KWiseHash> bucket_hash_;         // per level
  std::vector<std::vector<recovery::OneSparse>> table_;  // [level][bucket]
};

}  // namespace lps::core
