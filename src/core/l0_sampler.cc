#include "src/core/l0_sampler.h"

#include <algorithm>
#include <cmath>

#include "src/util/bits.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::core {

L0Sampler::L0Sampler(L0SamplerParams params) : params_(params), n_(params.n) {
  LPS_CHECK(params.n >= 1);
  LPS_CHECK(params.delta > 0 && params.delta < 1);
  s_ = params.s != 0
           ? params.s
           : static_cast<uint64_t>(
                 std::max(4.0, std::ceil(4 * std::log2(1 / params.delta))));
  params_.s = s_;
  const int max_level = FloorLog2(std::max<uint64_t>(n_, 1));
  // Words consumed: one membership word per (level, coordinate) pair plus
  // one choice word per level.
  const uint64_t words_needed =
      (static_cast<uint64_t>(max_level) + 1) * (n_ + 1) + 1;
  if (params.use_nisan) {
    source_ = std::make_unique<prg::NisanSource>(CeilLog2(words_needed),
                                                 params.seed);
  } else {
    source_ = std::make_unique<prg::OracleSource>(params.seed);
  }
  levels_.reserve(static_cast<size_t>(max_level) + 1);
  for (int k = 0; k <= max_level; ++k) {
    levels_.emplace_back(n_, s_,
                         Mix64(params.seed ^ (0x10ca1ULL + static_cast<uint64_t>(k))));
  }
}

bool L0Sampler::InLevel(int k, uint64_t i) const {
  if (k == 0) return true;  // I_0 = [n]
  const double rate =
      std::pow(2.0, k) / static_cast<double>(n_);  // |I_k| = 2^k in expectation
  const uint64_t word_index = static_cast<uint64_t>(k) * (n_ + 1) + i;
  return source_->Uniform01(word_index) < rate;
}

void L0Sampler::Update(uint64_t i, int64_t delta) {
  const stream::Update u{i, delta};
  UpdateBatch(&u, 1);
}

void L0Sampler::UpdateBatch(const stream::Update* updates, size_t count) {
  for (int k = 0; k < static_cast<int>(levels_.size()); ++k) {
    auto& level = levels_[static_cast<size_t>(k)];
    if (k == 0) {
      // I_0 = [n]: every update survives, so the whole batch goes straight
      // to the recovery's interleaved kernel (which validates indices).
      level.UpdateBatch(updates, count);
      continue;
    }
    // Filter the batch through this level's membership test, then hand the
    // survivors to the batch kernel in one go.
    survivors_.clear();
    for (size_t t = 0; t < count; ++t) {
      if (InLevel(k, updates[t].index)) survivors_.push_back(updates[t]);
    }
    if (!survivors_.empty()) {
      level.UpdateBatch(survivors_.data(), survivors_.size());
    }
  }
}

Result<SampleResult> L0Sampler::Sample() const {
  int level;
  return SampleWithLevel(&level);
}

Result<SampleResult> L0Sampler::SampleWithLevel(int* level_out) const {
  for (int k = 0; k < static_cast<int>(levels_.size()); ++k) {
    const auto& level = levels_[static_cast<size_t>(k)];
    auto recovered = level.Recover();
    if (!recovered.ok()) continue;         // DENSE: try the next level
    if (recovered.value().empty()) continue;  // zero restriction
    // Uniform choice among the recovered support, driven by the same
    // random source (a dedicated word per level).
    const auto& entries = recovered.value();
    const uint64_t word =
        source_->Word(levels_.size() * (n_ + 1) + static_cast<uint64_t>(k));
    const auto& entry = entries[word % entries.size()];
    *level_out = k;
    return SampleResult{entry.index, static_cast<double>(entry.value)};
  }
  return Status::Failed("all levels zero or DENSE");
}

void L0Sampler::SerializeCounters(BitWriter* writer) const {
  for (const auto& level : levels_) level.SerializeCounters(writer);
}

void L0Sampler::DeserializeCounters(BitReader* reader) {
  for (auto& level : levels_) level.DeserializeCounters(reader);
}

void L0Sampler::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const L0Sampler*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->params_.n == params_.n && o->params_.delta == params_.delta &&
            o->params_.s == params_.s && o->params_.seed == params_.seed &&
            o->params_.use_nisan == params_.use_nisan);
  for (size_t k = 0; k < levels_.size(); ++k) levels_[k].Merge(o->levels_[k]);
}

void L0Sampler::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const L0Sampler*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->params_.n == params_.n && o->params_.delta == params_.delta &&
            o->params_.s == params_.s && o->params_.seed == params_.seed &&
            o->params_.use_nisan == params_.use_nisan);
  for (size_t k = 0; k < levels_.size(); ++k) {
    levels_[k].MergeNegated(o->levels_[k]);
  }
}

void L0Sampler::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteU64(params_.n);
  writer->WriteDouble(params_.delta);
  writer->WriteU64(params_.s);
  writer->WriteU64(params_.seed);
  writer->WriteBits(params_.use_nisan ? 1 : 0, 1);
  SerializeCounters(writer);
}

void L0Sampler::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  L0SamplerParams params;
  params.n = reader->ReadU64();
  params.delta = reader->ReadDouble();
  params.s = reader->ReadU64();
  params.seed = reader->ReadU64();
  params.use_nisan = reader->ReadBits(1) != 0;
  *this = L0Sampler(params);
  DeserializeCounters(reader);
}

void L0Sampler::Reset() {
  for (auto& level : levels_) level.Reset();
}

size_t L0Sampler::SpaceBits() const {
  size_t bits = source_->SeedBits();
  for (const auto& level : levels_) bits += level.SpaceBits();
  return bits;
}

}  // namespace lps::core
