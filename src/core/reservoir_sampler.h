// Classical reservoir sampling [20] (attributed to Alan G. Waterman),
// described in the paper's introduction: for insertion-only streams it is
// a perfect L1 sampler in O(1) words. Included both as the positive-update
// baseline and as the uniform-position sampler used by the length-(n+s)
// duplicates algorithm of Section 3.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/random.h"
#include "src/util/status.h"

namespace lps::core {

/// Weighted reservoir over positive updates: after the stream, holds index
/// i with probability x_i / ||x||_1 exactly.
class WeightedReservoir {
 public:
  explicit WeightedReservoir(uint64_t seed) : rng_(seed) {}

  /// Processes update (i, u); u must be positive.
  void Update(uint64_t i, double weight);

  bool HasSample() const { return total_ > 0; }
  uint64_t Sample() const;
  double total_weight() const { return total_; }

 private:
  Rng rng_;
  double total_ = 0;
  uint64_t current_ = 0;
};

/// k independent uniform samples (with replacement) from an item stream of
/// unknown length: k parallel single-item reservoirs.
class ItemReservoir {
 public:
  ItemReservoir(int k, uint64_t seed);

  void Add(uint64_t item);

  /// Items currently held (one per reservoir; meaningful once count() > 0).
  const std::vector<uint64_t>& held() const { return held_; }
  uint64_t count() const { return count_; }

 private:
  Rng rng_;
  uint64_t count_ = 0;
  std::vector<uint64_t> held_;
};

}  // namespace lps::core
