// Common result type for all samplers (Definition 1): an index drawn
// (approximately) from the Lp distribution of the stream vector, plus the
// sampler's estimate of the sampled coordinate's value (our sampler, like
// the paper's, approximates x_i itself — see footnote 1).
#pragma once

#include <cstdint>

namespace lps::core {

struct SampleResult {
  uint64_t index;    ///< sampled coordinate
  double estimate;   ///< estimate of x_index (exact for the L0 sampler)
};

}  // namespace lps::core
