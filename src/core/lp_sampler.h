// The paper's Lp sampler for p in (0, 2): Figure 1, Lemmas 3-4, Theorem 1.
//
// One *round* is exactly the algorithm of Figure 1:
//
//   Initialization:
//     k-wise independent scaling factors t_i in (0, 1]
//       (k = 10 ceil(1/|p-1|), or O(log 1/eps) for p = 1);
//     count-sketch with parameter m (6m buckets x l = O(log n) rows)
//       for the scaled vector z_i = x_i / t_i^{1/p};
//     linear sketches for ||x||_p (Lemma 2) and ||z - zhat||_2.
//   Processing: every update (i, u) feeds the count-sketch with
//     (i, u / t_i^{1/p}) and the norm sketches.
//   Recovery:
//     z* = count-sketch estimates, zhat = best m-sparse approximation;
//     r in [||x||_p, 2||x||_p]; s in [||z - zhat||_2, 2||z - zhat||_2];
//     i = argmax |z*_i|;
//     FAIL if s > beta m^{1/2} r or |z*_i| < eps^{-1/p} r, where
//     beta = eps^{1 - 1/p}; else output i and x_i ~= z*_i t_i^{1/p}.
//
// A round succeeds with probability Theta(eps) and, conditioned on success,
// outputs i with probability (1 +- O(eps)) |x_i|^p / ||x||_p^p (Lemma 4).
// The full sampler runs v = O(log(1/delta)/eps) rounds in parallel and
// returns the first non-failing output (Theorem 1), sharing a single
// ||x||_p estimator across rounds (the estimate depends only on x).
//
// Space: O(eps^{-max(1,p)} log^2 n log(1/delta)) bits for p != 1 and an
// extra log(1/eps) for p = 1, under the paper's counter model
// (SpaceBits(bits_per_counter)).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/sampler.h"
#include "src/hash/kwise.h"
#include "src/norm/lp_norm.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/dyadic.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/update.h"
#include "src/util/status.h"

namespace lps::core {

struct LpSamplerParams {
  uint64_t n = 0;       ///< universe size (required)
  double p = 1.0;       ///< in (0, 2)
  double eps = 0.5;     ///< relative error target, in (0, 1)
  double delta = 0.25;  ///< overall failure probability target

  /// 0 means "derive from the paper's formulas with calibrated constants":
  int repetitions = 0;  ///< v = O(log(1/delta)/eps)
  int cs_rows = 0;      ///< l = O(log n)
  int m = 0;            ///< count-sketch parameter (Figure 1 step 1/2)
  int k = 0;            ///< independence of the scaling factors
  int norm_rows = 0;    ///< rows of the Lemma 2 estimator
  /// Rows of the per-round dyadic candidate generator (the query engine's
  /// O(m log n) replacement for the full-universe recovery scan); 0 picks
  /// a small constant — candidates only need to *contain* the heavy
  /// coordinates, the flat count-sketch does the accurate ranking.
  int dyadic_rows = 0;

  uint64_t seed = 0;

  /// Experiment hook for Lemma 3 (claim C4): if override_index >= 0, the
  /// scaling factor of that coordinate is pinned to override_t in every
  /// round, reproducing the lemma's conditioning on t_i = t.
  int64_t override_index = -1;
  double override_t = 0.0;
};

/// A single round of Figure 1. Exposed publicly because the distribution
/// experiments measure the *conditional* output law of one round, and the
/// Lemma 3 experiment pins scaling factors round-by-round.
class LpSamplerRound {
 public:
  LpSamplerRound(const LpSamplerParams& params, int round_index);

  /// Single-update path; delegates to UpdateBatch with a batch of one.
  void Update(uint64_t i, double delta);

  /// Batched ingestion: scaling factors t_i are drawn and applied for the
  /// whole batch, then the count-sketch ingests the scaled batch through
  /// its own fast path. Bit-identical to per-update processing.
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count);

  /// Runs the recovery stage of Figure 1 against a norm estimate r
  /// (Lemma 2 output, supplied by the owning sampler). Sub-linear: the
  /// co-updated dyadic tree yields O(m log n) candidates, the flat
  /// count-sketch point-estimates only those — no universe scan.
  /// NOTE: logically const but NOT safe to call concurrently on the same
  /// round — it fills the cached recovery snapshot and the residual
  /// estimate temporarily subtracts from the count-sketch table in place
  /// (exactly restored before returning). Same caveat for
  /// WouldAbortOnTail, RecoverReference, and the owning Sample().
  Result<SampleResult> Recover(double r) const;

  /// Reference-oracle recovery: identical decision logic driven by the
  /// O(n * rows) full-universe TopM scan. Kept ONLY so tests and benches
  /// can assert/measure the candidate engine against the exhaustive
  /// answer; no production path calls it.
  Result<SampleResult> RecoverReference(double r) const;

  /// The scaling factor t_i used by this round.
  double ScalingFactor(uint64_t i) const;

  /// Abort diagnostics for the Lemma 3 experiment: returns true iff the
  /// round would abort with s > beta m^{1/2} r. Shares the cached
  /// candidate computation with Recover — calling both costs one TopM +
  /// one residual estimate, not two.
  bool WouldAbortOnTail(double r) const;

  size_t SpaceBits(int bits_per_counter = 64) const;

  /// The candidate generator's share of SpaceBits, reported separately so
  /// the paper-exact accounting of the Figure 1 structures stays visible.
  size_t DyadicSpaceBits(int bits_per_counter = 64) const;

  /// Counter-state serialization for protocol messages (seeds are shared
  /// randomness and travel out of band). The dyadic candidate counters
  /// are part of the round's memory — the receiving party needs them to
  /// keep streaming and to recover sub-linearly.
  void SerializeCounters(BitWriter* writer) const {
    cs_.SerializeCounters(writer);
    dyadic_.SerializeCounters(writer);
  }
  void DeserializeCounters(BitReader* reader) {
    cs_.DeserializeCounters(reader);
    dyadic_.DeserializeCounters(reader);
    snapshot_.reset();
  }

  /// Coordinate-wise addition of a same-params round replica (used by
  /// LpSampler::Merge; the sketches CHECK shape and seed).
  void MergeFrom(const LpSamplerRound& other) {
    cs_.Merge(other.cs_);
    dyadic_.Merge(other.dyadic_);
    snapshot_.reset();
  }

  /// Coordinate-wise subtraction of a same-params round replica (used by
  /// LpSampler::MergeNegated; the sketches CHECK shape and seed).
  void MergeNegatedFrom(const LpSamplerRound& other) {
    cs_.MergeNegated(other.cs_);
    dyadic_.MergeNegated(other.dyadic_);
    snapshot_.reset();
  }

  /// Zeroes the round's counters, keeping hashes and allocations.
  void ResetCounters() {
    cs_.Reset();
    dyadic_.Reset();
    snapshot_.reset();
  }

  int m() const { return m_; }
  double beta() const { return beta_; }

 private:
  /// One recovery's shared intermediates: the m-sparse approximation and
  /// the (inflated) residual estimate s. Computed once per sketch state
  /// and cached; every ingest/merge/reset invalidates.
  struct RecoverySnapshot {
    std::vector<std::pair<uint64_t, double>> zhat;
    double s = 0;
  };
  const RecoverySnapshot& Snapshot() const;
  Result<SampleResult> Decide(const RecoverySnapshot& snap, double r) const;

  uint64_t n_;
  double p_;
  double eps_;
  int m_;
  double beta_;
  int64_t override_index_;
  double override_t_;
  hash::KWiseHash t_hash_;
  sketch::CountSketch cs_;
  sketch::DyadicCountSketch dyadic_;          // candidate generator
  std::vector<stream::ScaledUpdate> scaled_;  // batch scratch
  std::vector<uint64_t> reduced_keys_;        // batch scratch
  std::vector<uint64_t> t_evals_;             // batch scratch: t_hash_ values
  mutable std::optional<RecoverySnapshot> snapshot_;  // query cache
};

class LpSampler : public LinearSketch {
 public:
  explicit LpSampler(LpSamplerParams params);

  /// Processes one stream update (i, u); delegates to the batch path.
  void Update(uint64_t i, double delta);

  /// Processes a batch of updates in one pass: the shared norm sketch and
  /// every round consume the batch through their own fast paths.
  /// Bit-identical to calling Update once per element in stream order.
  void UpdateBatch(const stream::Update* updates, size_t count) override;
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count);

  /// Theorem 1: the first non-failing round's output, or Status::Failed.
  /// Logically const but NOT safe to call concurrently on the same object
  /// (per-round snapshot caching + in-place residual estimation; see
  /// LpSamplerRound::Recover). Concurrent deployments query disjoint
  /// replicas — the ShardedDriver topology — or serialize queries.
  Result<SampleResult> Sample() const;

  /// The shared Lemma 2 estimate r (exposed for experiments).
  double NormEstimate() const;

  int repetitions() const { return static_cast<int>(rounds_.size()); }
  const LpSamplerRound& round(int i) const {
    return rounds_[static_cast<size_t>(i)];
  }
  const LpSamplerParams& params() const { return params_; }

  /// Total space under the paper's counter model, including the dyadic
  /// candidate generators.
  size_t SpaceBits(int bits_per_counter) const;

  /// The dyadic candidate generators' share of SpaceBits — the query
  /// engine's overhead on top of the paper-exact Figure 1 accounting.
  size_t DyadicSpaceBits(int bits_per_counter = 64) const;

  /// Serializes every counter (all rounds + norm sketch) so another party
  /// holding the same seeds can continue the stream — the "send the memory
  /// contents" step of the reductions in Section 4.
  void SerializeCounters(BitWriter* writer) const;
  void DeserializeCounters(BitReader* reader);

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kLpSampler; }

  /// The derived parameters actually in use (after 0 -> auto resolution).
  static LpSamplerParams Resolve(LpSamplerParams params);

 private:
  LpSamplerParams params_;  // resolved
  norm::LpNormEstimator norm_;
  std::vector<LpSamplerRound> rounds_;
  std::vector<stream::ScaledUpdate> scaled_;  // batch scratch
};

}  // namespace lps::core
