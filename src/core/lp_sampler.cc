#include "src/core/lp_sampler.h"

#include <algorithm>
#include <cmath>

#include "src/util/bits.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::core {

namespace {

// Scaling factors below this are clamped; the event t_i < 2^-60 has
// probability < n * 2^-60 per stream, the same "low probability" bucket the
// paper uses for t_i^{-1} > n^c (Theorem 1 proof).
constexpr double kMinScaling = 0x1.0p-60;

// Calibrated "large enough constant factor" for m (Figure 1 step 1); see
// EXPERIMENTS.md (claims C1/C3) for the measured distribution accuracy.
constexpr double kMConstant = 8.0;

// Inflation applied to the count-sketch residual-F2 median so that
// s in [||z - zhat||_2, 2||z - zhat||_2] w.h.p. (recovery stage, step 3).
constexpr double kResidualInflation = 1.35;

// Default rows of the per-round dyadic candidate generator. Small on
// purpose: a candidate only needs to *survive the beam*, the flat
// count-sketch (with its full O(log n) rows) does the accurate ranking,
// so a per-block median of 5 is ample and keeps the ingest overhead of
// the log n dyadic levels bounded.
constexpr int kDefaultDyadicRows = 5;

}  // namespace

LpSamplerParams LpSampler::Resolve(LpSamplerParams params) {
  LPS_CHECK(params.n >= 1);
  LPS_CHECK(params.p > 0 && params.p < 2);
  LPS_CHECK(params.eps > 0 && params.eps < 1);
  LPS_CHECK(params.delta > 0 && params.delta < 1);
  const double p = params.p;
  const double eps = params.eps;
  if (params.k == 0) {
    if (p == 1.0) {
      params.k = std::max(4, static_cast<int>(std::ceil(4 * std::log2(1 / eps))));
    } else {
      params.k = 10 * static_cast<int>(std::ceil(1.0 / std::abs(p - 1.0)));
    }
  }
  if (params.m == 0) {
    if (p == 1.0) {
      params.m = std::max(
          4, static_cast<int>(std::ceil(4 * std::log2(1 / eps))));
    } else {
      params.m = std::max(4, static_cast<int>(std::ceil(
                                 kMConstant * std::pow(eps, -std::max(0.0, p - 1)))));
    }
  }
  if (params.cs_rows == 0) {
    params.cs_rows = std::max(7, 2 * CeilLog2(std::max<uint64_t>(params.n, 2)) + 1);
  }
  if (params.norm_rows == 0) {
    params.norm_rows = norm::LpNormEstimator::DefaultRows(params.n);
  }
  if (params.dyadic_rows == 0) {
    params.dyadic_rows = kDefaultDyadicRows;
  }
  if (params.repetitions == 0) {
    // Per-round success is >= eps / 2^p (Theorem 1 proof); the 1.5 safety
    // factor is calibrated against the measured rates in
    // bench_lp_sampler_accuracy (which run ~3.5x above the bound).
    const double per_round = eps / std::pow(2.0, p) / 1.5;
    params.repetitions = std::clamp(
        static_cast<int>(std::ceil(std::log(1 / params.delta) / per_round)), 1,
        300);
  }
  return params;
}

LpSamplerRound::LpSamplerRound(const LpSamplerParams& params, int round_index)
    : n_(params.n), p_(params.p), eps_(params.eps), m_(params.m),
      beta_(std::pow(params.eps, 1.0 - 1.0 / params.p)),
      override_index_(params.override_index), override_t_(params.override_t),
      t_hash_(params.k,
              Mix64(params.seed ^ (0x70f0ULL + static_cast<uint64_t>(round_index)))),
      cs_(params.cs_rows, 6 * params.m,
          Mix64(params.seed ^ (0xc500ULL + static_cast<uint64_t>(round_index)))),
      dyadic_(CeilLog2(std::max<uint64_t>(params.n, 1)),
              params.dyadic_rows > 0 ? params.dyadic_rows : kDefaultDyadicRows,
              6 * params.m,
              Mix64(params.seed ^
                    (0xd7a0ULL + static_cast<uint64_t>(round_index)))) {}

double LpSamplerRound::ScalingFactor(uint64_t i) const {
  if (override_index_ >= 0 && static_cast<uint64_t>(override_index_) == i) {
    return override_t_;
  }
  return std::max(t_hash_.UniformPositive(i), kMinScaling);
}

void LpSamplerRound::Update(uint64_t i, double delta) {
  const stream::ScaledUpdate u{i, delta};
  UpdateBatch(&u, 1);
}

void LpSamplerRound::UpdateBatch(const stream::ScaledUpdate* updates,
                                 size_t count) {
  snapshot_.reset();
  scaled_.resize(count);
  if (override_index_ >= 0) {
    // Test hook in play: keep the per-item path so the overridden
    // coordinate picks up its forced t.
    if (p_ == 1.0) {
      for (size_t t = 0; t < count; ++t) {
        scaled_[t] = {updates[t].index,
                      updates[t].delta / ScalingFactor(updates[t].index)};
      }
    } else {
      const double inv_p = 1.0 / p_;
      for (size_t t = 0; t < count; ++t) {
        const double scale = ScalingFactor(updates[t].index);
        scaled_[t] = {updates[t].index,
                      updates[t].delta / std::pow(scale, inv_p)};
      }
    }
  } else {
    // The k-wise t_i hash (k is 10*ceil(1/|p-1|) — the deepest Horner in
    // the library) runs on the dispatched kernel; the (eval + 1) / p
    // uniform, the kMinScaling clamp and the divide replicate
    // ScalingFactor per item, so the scaled stream is bit-identical to
    // the per-item path.
    reduced_keys_.resize(count);
    t_evals_.resize(count);
    for (size_t t = 0; t < count; ++t) {
      reduced_keys_[t] = gf61::Reduce(updates[t].index);
    }
    t_hash_.EvalBatch(reduced_keys_.data(), count, t_evals_.data());
    if (p_ == 1.0) {
      // t^{1/p} = t at p = 1: the per-item std::pow is the identity, so
      // the hot loop is a single divide (std::pow(x, 1.0) returns x
      // exactly, so this is bit-identical to the general path).
      for (size_t t = 0; t < count; ++t) {
        const double scale =
            std::max((static_cast<double>(t_evals_[t]) + 1.0) /
                         static_cast<double>(gf61::kP),
                     kMinScaling);
        scaled_[t] = {updates[t].index, updates[t].delta / scale};
      }
    } else {
      const double inv_p = 1.0 / p_;
      for (size_t t = 0; t < count; ++t) {
        const double scale =
            std::max((static_cast<double>(t_evals_[t]) + 1.0) /
                         static_cast<double>(gf61::kP),
                     kMinScaling);
        scaled_[t] = {updates[t].index,
                      updates[t].delta / std::pow(scale, inv_p)};
      }
    }
  }
  cs_.UpdateBatch(scaled_.data(), count);
  dyadic_.UpdateBatch(scaled_.data(), count);
}

const LpSamplerRound::RecoverySnapshot& LpSamplerRound::Snapshot() const {
  if (!snapshot_.has_value()) {
    // Candidate generation: O(m log n) dyadic beam descent over z instead
    // of the O(n * rows) universe scan. Leaves >= n_ (padding of the
    // power-of-two dyadic universe) never carry mass; drop them so the
    // flat estimates match the [0, n) oracle exactly.
    std::vector<uint64_t> candidates =
        dyadic_.TopCandidates(static_cast<uint64_t>(m_));
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [this](uint64_t i) { return i >= n_; }),
        candidates.end());
    RecoverySnapshot snap;
    snap.zhat = cs_.TopM(candidates, static_cast<uint64_t>(m_));
    snap.s = kResidualInflation * cs_.EstimateResidualL2(snap.zhat);
    snapshot_ = std::move(snap);
  }
  return *snapshot_;
}

bool LpSamplerRound::WouldAbortOnTail(double r) const {
  return Snapshot().s > beta_ * std::sqrt(static_cast<double>(m_)) * r;
}

Result<SampleResult> LpSamplerRound::Decide(const RecoverySnapshot& snap,
                                            double r) const {
  // Step 1 happened in the caller: z* restricted to zhat's support.
  if (snap.zhat.empty()) return Status::Failed("empty sketch");

  // Step 5: the two abort tests (step 3 produced s).
  if (snap.s > beta_ * std::sqrt(static_cast<double>(m_)) * r) {
    return Status::Failed("tail too heavy: s > beta m^1/2 r");
  }
  const auto& [index, z_star] = snap.zhat[0];  // step 4: argmax |z*_i|
  if (std::abs(z_star) < std::pow(eps_, -1.0 / p_) * r) {
    return Status::Failed("no sufficiently heavy coordinate");
  }

  // Step 6: the sample and the estimate of x_i.
  const double t = ScalingFactor(index);
  return SampleResult{index, z_star * std::pow(t, 1.0 / p_)};
}

Result<SampleResult> LpSamplerRound::Recover(double r) const {
  return Decide(Snapshot(), r);
}

Result<SampleResult> LpSamplerRound::RecoverReference(double r) const {
  RecoverySnapshot snap;
  snap.zhat = cs_.TopM(n_, static_cast<uint64_t>(m_));
  snap.s = kResidualInflation * cs_.EstimateResidualL2(snap.zhat);
  return Decide(snap, r);
}

size_t LpSamplerRound::SpaceBits(int bits_per_counter) const {
  return cs_.SpaceBits(bits_per_counter) + t_hash_.SeedBits() +
         DyadicSpaceBits(bits_per_counter);
}

size_t LpSamplerRound::DyadicSpaceBits(int bits_per_counter) const {
  return dyadic_.SpaceBits(bits_per_counter);
}

LpSampler::LpSampler(LpSamplerParams params)
    : params_(Resolve(std::move(params))),
      norm_(params_.p, params_.norm_rows, Mix64(params_.seed ^ 0x4042ULL)) {
  rounds_.reserve(static_cast<size_t>(params_.repetitions));
  for (int v = 0; v < params_.repetitions; ++v) {
    rounds_.emplace_back(params_, v);
  }
}

void LpSampler::Update(uint64_t i, double delta) {
  const stream::ScaledUpdate u{i, delta};
  UpdateBatch(&u, 1);
}

void LpSampler::UpdateBatch(const stream::ScaledUpdate* updates,
                            size_t count) {
  for (size_t t = 0; t < count; ++t) {
    LPS_CHECK(updates[t].index < params_.n);
  }
  norm_.UpdateBatch(updates, count);
  for (auto& round : rounds_) round.UpdateBatch(updates, count);
}

void LpSampler::UpdateBatch(const stream::Update* updates, size_t count) {
  scaled_.resize(count);
  for (size_t t = 0; t < count; ++t) {
    scaled_[t] = {updates[t].index, static_cast<double>(updates[t].delta)};
  }
  UpdateBatch(scaled_.data(), count);
}

double LpSampler::NormEstimate() const { return norm_.Estimate2Approx(); }

Result<SampleResult> LpSampler::Sample() const {
  const double r = NormEstimate();
  if (r <= 0) return Status::Failed("zero vector");
  for (const auto& round : rounds_) {
    Result<SampleResult> res = round.Recover(r);
    if (res.ok()) return res;
  }
  return Status::Failed("all rounds failed");
}

void LpSampler::SerializeCounters(BitWriter* writer) const {
  norm_.sketch().SerializeCounters(writer);
  for (const auto& round : rounds_) round.SerializeCounters(writer);
}

void LpSampler::DeserializeCounters(BitReader* reader) {
  norm_.mutable_sketch()->DeserializeCounters(reader);
  for (auto& round : rounds_) round.DeserializeCounters(reader);
}

void LpSampler::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const LpSampler*>(&other);
  LPS_CHECK(o != nullptr);
  const LpSamplerParams& a = params_;
  const LpSamplerParams& b = o->params_;
  LPS_CHECK(a.n == b.n && a.p == b.p && a.eps == b.eps && a.delta == b.delta &&
            a.repetitions == b.repetitions && a.cs_rows == b.cs_rows &&
            a.m == b.m && a.k == b.k && a.norm_rows == b.norm_rows &&
            a.dyadic_rows == b.dyadic_rows && a.seed == b.seed &&
            a.override_index == b.override_index &&
            a.override_t == b.override_t);
  norm_.Merge(o->norm_);
  for (size_t v = 0; v < rounds_.size(); ++v) {
    rounds_[v].MergeFrom(o->rounds_[v]);
  }
}

void LpSampler::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const LpSampler*>(&other);
  LPS_CHECK(o != nullptr);
  const LpSamplerParams& a = params_;
  const LpSamplerParams& b = o->params_;
  LPS_CHECK(a.n == b.n && a.p == b.p && a.eps == b.eps && a.delta == b.delta &&
            a.repetitions == b.repetitions && a.cs_rows == b.cs_rows &&
            a.m == b.m && a.k == b.k && a.norm_rows == b.norm_rows &&
            a.dyadic_rows == b.dyadic_rows && a.seed == b.seed &&
            a.override_index == b.override_index &&
            a.override_t == b.override_t);
  norm_.MergeNegated(o->norm_);
  for (size_t v = 0; v < rounds_.size(); ++v) {
    rounds_[v].MergeNegatedFrom(o->rounds_[v]);
  }
}

void LpSampler::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteU64(params_.n);
  writer->WriteDouble(params_.p);
  writer->WriteDouble(params_.eps);
  writer->WriteDouble(params_.delta);
  writer->WriteBits(static_cast<uint64_t>(params_.repetitions), 32);
  writer->WriteBits(static_cast<uint64_t>(params_.cs_rows), 32);
  writer->WriteBits(static_cast<uint64_t>(params_.m), 32);
  writer->WriteBits(static_cast<uint64_t>(params_.k), 32);
  writer->WriteBits(static_cast<uint64_t>(params_.norm_rows), 32);
  writer->WriteBits(static_cast<uint64_t>(params_.dyadic_rows), 32);
  writer->WriteU64(params_.seed);
  writer->WriteU64(static_cast<uint64_t>(params_.override_index));
  writer->WriteDouble(params_.override_t);
  SerializeCounters(writer);
}

void LpSampler::Deserialize(BitReader* reader) {
  // Version 2 added the dyadic candidate generators (dyadic_rows param +
  // per-round counters); the v1 layout cannot be reconstructed.
  const uint32_t version = ReadSketchHeader(reader, kind());
  LPS_CHECK(version >= 2);
  LpSamplerParams params;
  params.n = reader->ReadU64();
  params.p = reader->ReadDouble();
  params.eps = reader->ReadDouble();
  params.delta = reader->ReadDouble();
  params.repetitions = static_cast<int>(reader->ReadBits(32));
  params.cs_rows = static_cast<int>(reader->ReadBits(32));
  params.m = static_cast<int>(reader->ReadBits(32));
  params.k = static_cast<int>(reader->ReadBits(32));
  params.norm_rows = static_cast<int>(reader->ReadBits(32));
  params.dyadic_rows = static_cast<int>(reader->ReadBits(32));
  params.seed = reader->ReadU64();
  params.override_index = static_cast<int64_t>(reader->ReadU64());
  params.override_t = reader->ReadDouble();
  *this = LpSampler(params);  // serialized params are already resolved
  DeserializeCounters(reader);
}

void LpSampler::Reset() {
  norm_.Reset();
  for (auto& round : rounds_) round.ResetCounters();
}

size_t LpSampler::SpaceBits(int bits_per_counter) const {
  size_t bits = norm_.SpaceBits(bits_per_counter);
  for (const auto& round : rounds_) bits += round.SpaceBits(bits_per_counter);
  return bits;
}

size_t LpSampler::DyadicSpaceBits(int bits_per_counter) const {
  size_t bits = 0;
  for (const auto& round : rounds_) {
    bits += round.DyadicSpaceBits(bits_per_counter);
  }
  return bits;
}

}  // namespace lps::core
