// The two-pass zero-relative-error L0 sampler sketched in the remark after
// Proposition 5: "along similar lines one can find an
// O(log n log log n log 1/delta) space two-pass zero relative error
// L0-sampling algorithm, by estimating L0 of the vector defined by the
// stream in the first pass using [17]".
//
// Pass 1 runs the turnstile L0 estimator (norm/l0_norm.h); between passes
// the sampler fixes the single subsampling rate 2^-k with
// E[survivors] ~ s/2, and pass 2 runs one s-sparse recovery on the
// restriction — one level instead of Theorem 2's log n levels, trading a
// second pass for a log factor of space.
//
// The output remains exactly uniform on the support for the same
// exchangeability reason as Theorem 2.
#pragma once

#include <cstdint>

#include "src/core/sampler.h"
#include "src/hash/kwise.h"
#include "src/norm/l0_norm.h"
#include "src/recovery/sparse_recovery.h"
#include "src/util/status.h"

namespace lps::core {

class TwoPassL0Sampler {
 public:
  struct Params {
    uint64_t n = 0;
    double delta = 0.25;
    uint64_t s = 0;  ///< 0 => ceil(4 log2(1/delta)) + slack
    uint64_t seed = 0;
  };

  explicit TwoPassL0Sampler(Params params);

  /// Pass 1: feed every update.
  void UpdateFirstPass(uint64_t i, int64_t delta);

  /// Call once after the first pass; chooses the subsampling level.
  void FinishFirstPass();

  /// Pass 2: feed the same stream again.
  void UpdateSecondPass(uint64_t i, int64_t delta);

  /// Uniform non-zero coordinate with its exact value, or Status::Failed.
  Result<SampleResult> Sample() const;

  /// The level chosen between passes (exposed for tests).
  int level() const { return level_; }

  /// Space across both passes: one estimator + ONE recovery structure —
  /// no log n level fan-out.
  size_t SpaceBits() const;

 private:
  uint64_t n_;
  uint64_t s_;
  uint64_t seed_;
  bool first_pass_done_ = false;
  int level_ = 0;
  norm::L0Estimator estimator_;
  hash::KWiseHash member_;
  recovery::SparseRecovery recovery_;
};

}  // namespace lps::core
