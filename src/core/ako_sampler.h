// Baseline: an Andoni-Krauthgamer-Onak-flavored precision-sampling Lp
// sampler [1], the algorithm the paper improves on.
//
// AKO's sampler differs from Figure 1 in two ways that cost a log factor:
// the scaling factors are only pairwise independent, and the count-sketch
// is sized Theta(eps^{-p} log n) — their analysis only guarantees the
// maximum of z carries an Omega(1/log n) fraction of ||z||, so the sketch
// must be a log factor wider to isolate it. Total space
// O(eps^{-p} log^3 n) bits versus the paper's O(eps^{-max(1,p)} log^2 n).
//
// We reproduce exactly those two structural choices on top of the shared
// precision-sampling machinery (recovery logic is shared; the comparison
// in claim C2 is about the space *shape*, which these choices determine).
#pragma once

#include "src/core/lp_sampler.h"

namespace lps::core {

class AkoSampler : public LinearSketch {
 public:
  /// Accepts the same parameters as LpSampler; k and m are overridden with
  /// AKO's choices (pairwise independence, m = Theta(eps^{-p} log n)).
  explicit AkoSampler(LpSamplerParams params);

  void Update(uint64_t i, double delta) { inner_.Update(i, delta); }
  void UpdateBatch(const stream::Update* updates, size_t count) override {
    inner_.UpdateBatch(updates, count);
  }
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count) {
    inner_.UpdateBatch(updates, count);
  }
  Result<SampleResult> Sample() const { return inner_.Sample(); }

  // LinearSketch contract: delegates to the inner sampler under this
  // baseline's own kind tag.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override { inner_.Reset(); }
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kAkoSampler; }

  size_t SpaceBits(int bits_per_counter) const {
    return inner_.SpaceBits(bits_per_counter);
  }
  /// The query engine's dyadic share of SpaceBits (see LpSampler) — the C2
  /// space-shape comparison subtracts it from both sides.
  size_t DyadicSpaceBits(int bits_per_counter = 64) const {
    return inner_.DyadicSpaceBits(bits_per_counter);
  }
  const LpSamplerParams& params() const { return inner_.params(); }

 private:
  static LpSamplerParams AkoResolve(LpSamplerParams params);
  LpSampler inner_;
};

}  // namespace lps::core
