// The zero-relative-error L0 sampler of Theorem 2.
//
// Level sets: I_0 = [n]; for k = 1 .. floor(log2 n), I_k keeps each
// coordinate independently with probability 2^k / n (expected size 2^k,
// the paper's "random subsets of size 2^k"). Each level runs the exact
// s-sparse recovery of Lemma 5 with s = ceil(4 log2(1/delta)) on the
// restriction of x to I_k. Sampling scans k = 0, 1, ... and returns a
// uniformly random non-zero coordinate of the first recovery that yields a
// non-zero s-sparse vector; it FAILs if every level reports zero or DENSE.
//
// Conditioned on success the output is *exactly* uniform on the support
// (zero relative error): I_k is an exchangeable random subset, so given
// |I_k cap supp(x)| = c every c-subset is equally likely.
//
// Randomness: all membership bits and the final uniform choice are read
// from a RandomSource. The default is a seeded random oracle; passing
// use_nisan = true reads them from Nisan's PRG instead (O(log^2 n) true
// random bits), which is the derandomization step of Theorem 2.
//
// Space: (log n + 1) levels x O(s log n) recovery bits = O(log^2 n) for
// constant delta, plus the O(log^2 n)-bit PRG seed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/sampler.h"
#include "src/prg/random_source.h"
#include "src/recovery/sparse_recovery.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/update.h"
#include "src/util/status.h"

namespace lps::core {

struct L0SamplerParams {
  uint64_t n = 0;
  double delta = 0.25;  ///< failure probability target
  uint64_t s = 0;       ///< sparsity per level; 0 => ceil(4 log2(1/delta))
  uint64_t seed = 0;
  bool use_nisan = false;  ///< Theorem 2's PRG derandomization
};

class L0Sampler : public LinearSketch {
 public:
  explicit L0Sampler(L0SamplerParams params);

  /// Single-update path; delegates to UpdateBatch with a batch of one.
  void Update(uint64_t i, int64_t delta);

  /// Batched ingestion, level-major: each level filters the batch through
  /// its membership test into a survivor buffer, then feeds the whole
  /// buffer to its sparse recovery's interleaved batch kernel while that
  /// level's measurements are hot. State is identical to per-update
  /// processing (field arithmetic is exact).
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// A uniform non-zero coordinate and its exact value, or Status::Failed.
  Result<SampleResult> Sample() const;

  /// As Sample, but also reports the level that produced the sample.
  Result<SampleResult> SampleWithLevel(int* level_out) const;

  uint64_t s() const { return s_; }
  int levels() const { return static_cast<int>(levels_.size()); }
  /// The construction parameters (with s resolved) — what SpecOf reads.
  const L0SamplerParams& params() const { return params_; }

  /// Paper-model space: recovery measurements plus the randomness-source
  /// seed (64 bits for the oracle model, O(log^2 n) for Nisan mode).
  size_t SpaceBits() const override;

  /// Counter-state serialization (levels' measurements); seeds are shared
  /// randomness. Used by the one-round universal relation protocol
  /// (Proposition 5).
  void SerializeCounters(BitWriter* writer) const;
  void DeserializeCounters(BitReader* reader);

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  SketchKind kind() const override { return SketchKind::kL0Sampler; }

 private:
  bool InLevel(int k, uint64_t i) const;

  L0SamplerParams params_;  // with s resolved into params_.s
  uint64_t n_;
  uint64_t s_;
  std::unique_ptr<prg::RandomSource> source_;
  std::vector<recovery::SparseRecovery> levels_;  // levels_[k] sketches I_k
  std::vector<stream::Update> survivors_;         // batch scratch
};

}  // namespace lps::core
