#include "src/core/fis_l0_sampler.h"

#include <algorithm>
#include <cmath>

#include "src/util/bits.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::core {

FisL0Sampler::FisL0Sampler(uint64_t n, uint64_t seed, int buckets)
    : n_(n), levels_(CeilLog2(std::max<uint64_t>(n, 2)) + 1),
      buckets_(buckets > 0 ? buckets
                           : std::max(8, 2 * CeilLog2(std::max<uint64_t>(n, 2)))),
      seed_(seed), level_hash_(2, Mix64(seed ^ 0xf15aULL)) {
  bucket_hash_.reserve(static_cast<size_t>(levels_));
  table_.resize(static_cast<size_t>(levels_));
  for (int l = 0; l < levels_; ++l) {
    bucket_hash_.emplace_back(
        2, Mix64(seed ^ (0xf15bULL + static_cast<uint64_t>(l))));
    auto& row = table_[static_cast<size_t>(l)];
    row.reserve(static_cast<size_t>(buckets_));
    for (int b = 0; b < buckets_; ++b) {
      row.emplace_back(n, Mix64(seed ^ (0xf15cULL +
                                        static_cast<uint64_t>(l) * 1024 +
                                        static_cast<uint64_t>(b))));
    }
  }
}

int FisL0Sampler::DeepestLevel(uint64_t i) const {
  const double u = level_hash_.UniformPositive(i);
  return std::min(levels_ - 1, static_cast<int>(std::floor(-std::log2(u))));
}

void FisL0Sampler::Update(uint64_t i, int64_t delta) {
  LPS_CHECK(i < n_);
  const int deepest = DeepestLevel(i);
  for (int l = 0; l <= deepest; ++l) {
    const size_t ll = static_cast<size_t>(l);
    const uint64_t b = bucket_hash_[ll].Range(i, static_cast<uint64_t>(buckets_));
    table_[ll][b].Update(i, delta);
  }
}

void FisL0Sampler::UpdateBatch(const stream::Update* updates, size_t count) {
  for (size_t t = 0; t < count; ++t) {
    Update(updates[t].index, updates[t].delta);
  }
}

void FisL0Sampler::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const FisL0Sampler*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->n_ == n_ && o->buckets_ == buckets_ && o->seed_ == seed_);
  for (size_t l = 0; l < table_.size(); ++l) {
    for (size_t b = 0; b < table_[l].size(); ++b) {
      table_[l][b].Merge(o->table_[l][b]);
    }
  }
}

void FisL0Sampler::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const FisL0Sampler*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->n_ == n_ && o->buckets_ == buckets_ && o->seed_ == seed_);
  for (size_t l = 0; l < table_.size(); ++l) {
    for (size_t b = 0; b < table_[l].size(); ++b) {
      table_[l][b].MergeNegated(o->table_[l][b]);
    }
  }
}

void FisL0Sampler::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteU64(n_);
  writer->WriteU64(seed_);
  writer->WriteBits(static_cast<uint64_t>(buckets_), 32);
  for (const auto& row : table_) {
    for (const auto& bucket : row) bucket.SerializeCounters(writer);
  }
}

void FisL0Sampler::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  const uint64_t n = reader->ReadU64();
  const uint64_t seed = reader->ReadU64();
  const int buckets = static_cast<int>(reader->ReadBits(32));
  *this = FisL0Sampler(n, seed, buckets);
  for (auto& row : table_) {
    for (auto& bucket : row) bucket.DeserializeCounters(reader);
  }
}

void FisL0Sampler::Reset() {
  for (auto& row : table_) {
    for (auto& bucket : row) bucket.Reset();
  }
}

Result<SampleResult> FisL0Sampler::Sample() const {
  // Scan from the sparsest level down: the first level with any valid
  // 1-sparse bucket has few survivors, so the choice is near-uniform over
  // the support.
  for (int l = levels_ - 1; l >= 0; --l) {
    std::vector<recovery::OneSparse::Entry> found;
    for (const auto& bucket : table_[static_cast<size_t>(l)]) {
      if (bucket.IsZero()) continue;
      auto entry = bucket.Recover();
      if (entry.ok()) found.push_back(entry.value());
    }
    if (!found.empty()) {
      const uint64_t pick =
          Mix64(seed_ ^ 0xc40f5eULL ^ static_cast<uint64_t>(l)) % found.size();
      return SampleResult{found[pick].index,
                          static_cast<double>(found[pick].value)};
    }
  }
  return Status::Failed("no level yielded a 1-sparse bucket");
}

size_t FisL0Sampler::SpaceBits() const {
  size_t bits = level_hash_.SeedBits();
  for (const auto& h : bucket_hash_) bits += h.SeedBits();
  for (const auto& row : table_) {
    for (const auto& bucket : row) bits += bucket.SpaceBits();
  }
  return bits;
}

}  // namespace lps::core
