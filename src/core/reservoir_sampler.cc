#include "src/core/reservoir_sampler.h"

#include "src/util/check.h"

namespace lps::core {

void WeightedReservoir::Update(uint64_t i, double weight) {
  LPS_CHECK(weight > 0);
  total_ += weight;
  // Replace the held sample with probability weight / total: a one-line
  // induction shows P[held == j] = x_j / total at every prefix.
  if (rng_.NextDouble() < weight / total_) current_ = i;
}

uint64_t WeightedReservoir::Sample() const {
  LPS_CHECK(HasSample());
  return current_;
}

ItemReservoir::ItemReservoir(int k, uint64_t seed)
    : rng_(seed), held_(static_cast<size_t>(k), 0) {
  LPS_CHECK(k >= 1);
}

void ItemReservoir::Add(uint64_t item) {
  ++count_;
  for (auto& slot : held_) {
    if (rng_.Below(count_) == 0) slot = item;
  }
}

}  // namespace lps::core
