// lps_bench_client — load generator and functional smoke for lps_serve.
//
// Speaks the production protocol through the SAME src/server/client.h
// codec the daemon's tests use (no bench-only wire path), against either
// an external daemon (--port p, the CI serve-smoke pairing) or an
// in-process Server on an ephemeral loopback port (the default — one
// command measures the full network round trip with no orchestration).
//
// Bench mode sweeps tenant counts {1, 8, 64}: per tenant one client
// thread on its own connection CREATEs a windowed cs_heavy_hitters
// stream, drives an ingest phase (batched INGEST requests) and a query
// phase (whole-stream QUERY plus trailing WINDOW requests), and reports
// requests/sec and p50/p99 request latency per phase into
// BENCH_serve.json — the artifact ci/compare_bench.py --serve gates.
//
// --smoke runs a single functional cycle instead (create, ingest,
// query, window, snapshot, restore, equivalence check, drop, stats,
// duplicate-create and unknown-key error paths) and exits non-zero on
// any deviation; the CI serve smoke drives it against a daemon started
// with --port 0 and then checks clean SIGTERM shutdown.
//
// --crash-prepare / --crash-verify bracket the crash-recovery smoke
// against a daemon running with --data-dir: prepare creates tenants,
// ingests deterministic streams, and writes each tenant's snapshot +
// query answer to files under --out (a directory in these modes); the
// harness then SIGKILLs and reboots the daemon, and verify re-fetches
// both from the rebooted daemon and demands they are BIT-IDENTICAL to
// the pre-crash files.
//
// --dist-verify / --dist-gap-verify pair with the distributed tier's
// multi-process smoke: after N lps_worker processes ship the planted
// stream (src/dist/planted.h) into an aggregator, dist-verify rebuilds
// the solo sketch in-process and demands the aggregator's SNAPSHOT
// state is bit-identical and its QUERY answer equal (with the planted
// heavy hitter present); dist-gap-verify polls DIST_STATS until a
// killed worker shows up as an interrupted lane, then proves the
// aggregator still serves the epochs it already folded.
//
// --replay FILE streams a trace file (text or binary, '-' = stdin) into
// the server through the pipelined INGEST_STREAM framing, with the async
// front-end (src/io/StreamFeeder) reading and decoding ahead of the
// socket — the end-to-end "disk to daemon" path. Prints the achieved
// update rate and the server's query answer for the replayed stream.
//
// Usage:
//   lps_bench_client [--port p] [--quick] [--smoke] [--out file]
//                    [--crash-prepare | --crash-verify]
//                    [--dist-verify | --dist-gap-verify]
//                    [--replay FILE]
//                    [--total n] [--tenant t] [--key k]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/query_result.h"
#include "src/api/sketch_spec.h"
#include "src/dist/planted.h"
#include "src/io/byte_source.h"
#include "src/io/stream_feeder.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/stream/generators.h"

namespace {

using lps::QueryResult;
using lps::server::SketchConfig;

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t at = std::min(values.size() - 1,
                             size_t(q * double(values.size())));
  return values[at];
}

/// The workload every tenant streams: a Zipf-ish skew with one planted
/// heavy coordinate per tenant, deterministic in (tenant, position).
lps::stream::Update MakeUpdate(uint64_t tenant, uint64_t position,
                               uint64_t n) {
  // Mix the pair into a pseudo-random coordinate; every 4th update hits
  // the tenant's heavy coordinate so heavy-hitter queries have signal.
  uint64_t h = (tenant + 1) * 0x9E3779B97F4A7C15ull + position;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  const uint64_t heavy = tenant % n;
  const uint64_t index = (position % 4 == 0) ? heavy : (h % n);
  return {index, +1};
}

SketchConfig TenantConfig(uint64_t tenant, uint64_t n) {
  SketchConfig config;
  config.spec.kind = lps::SketchKind::kCsHeavyHitters;
  config.spec.n = n;
  config.spec.p = 1.0;
  config.spec.phi = 0.05;
  config.spec.seed = 1000 + tenant;
  config.window_checkpoint = 8192;
  return config;
}

struct Flags {
  int port = 0;  // 0 = run an in-process server
  bool quick = false;
  bool smoke = false;
  bool crash_prepare = false;
  bool crash_verify = false;
  bool dist_verify = false;
  bool dist_gap_verify = false;
  uint64_t total = 1 << 16;  // planted-stream length for --dist-verify
  std::string tenant = "dist";
  std::string key = "s";
  std::string out = "BENCH_serve.json";
  std::string replay;  // trace file for --replay ('-' = stdin)
};

int Fail(const char* what, const lps::Status& status) {
  std::fprintf(stderr, "lps_bench_client: %s: %s\n", what,
               status.ToString().c_str());
  return 1;
}

// ---------------------------------------------------------------- smoke --

int RunSmoke(const std::string& host, int port) {
  auto connected = lps::server::Client::Connect(host, port);
  if (!connected.ok()) return Fail("connect", connected.status());
  lps::server::Client client = std::move(connected.value());

  const uint64_t n = 1 << 12;
  const SketchConfig config = TenantConfig(0, n);
  lps::Status status = client.Create("smoke", "s", config);
  if (!status.ok()) return Fail("create", status);

  // Duplicate CREATE must be an error response, not a dead connection.
  if (client.Create("smoke", "s", config).ok()) {
    std::fprintf(stderr, "lps_bench_client: duplicate create succeeded\n");
    return 1;
  }

  std::vector<lps::stream::Update> updates;
  for (uint64_t i = 0; i < 3 * config.window_checkpoint; ++i) {
    updates.push_back(MakeUpdate(0, i, n));
  }
  auto ingested = client.Ingest("smoke", "s", updates);
  if (!ingested.ok()) return Fail("ingest", ingested.status());
  if (*ingested != updates.size()) {
    std::fprintf(stderr, "lps_bench_client: ingest ack %llu != %zu\n",
                 static_cast<unsigned long long>(*ingested), updates.size());
    return 1;
  }

  auto query = client.Query("smoke", "s");
  if (!query.ok()) return Fail("query", query.status());
  const uint64_t heavy = 0 % n;
  const bool found = std::find(query->items.begin(), query->items.end(),
                               heavy) != query->items.end();
  if (query->type != QueryResult::Type::kHeavyHitters || !found) {
    std::fprintf(stderr, "lps_bench_client: heavy coordinate missing from "
                         "query answer: %s",
                 query->ToText().c_str());
    return 1;
  }

  auto window =
      client.Window("smoke", "s", config.window_checkpoint, false);
  if (!window.ok()) return Fail("window", window.status());
  if (window->length < config.window_checkpoint ||
      window->start + window->length != updates.size()) {
    std::fprintf(stderr, "lps_bench_client: window [%llu, +%llu) does not "
                         "cover the last %llu of %zu updates\n",
                 static_cast<unsigned long long>(window->start),
                 static_cast<unsigned long long>(window->length),
                 static_cast<unsigned long long>(config.window_checkpoint),
                 updates.size());
    return 1;
  }

  auto snapshot = client.Snapshot("smoke", "s");
  if (!snapshot.ok()) return Fail("snapshot", snapshot.status());
  status = client.Restore("smoke", "restored", *snapshot);
  if (!status.ok()) return Fail("restore", status);
  auto restored_query = client.Query("smoke", "restored");
  if (!restored_query.ok()) return Fail("query restored", restored_query.status());
  if (*restored_query != *query) {
    std::fprintf(stderr, "lps_bench_client: restored stream answers "
                         "differently:\n  %s  %s",
                 query->ToText().c_str(), restored_query->ToText().c_str());
    return 1;
  }

  status = client.Drop("smoke", "s");
  if (!status.ok()) return Fail("drop", status);
  if (client.Query("smoke", "s").ok()) {
    std::fprintf(stderr, "lps_bench_client: query after drop succeeded\n");
    return 1;
  }

  auto stats = client.Stats();
  if (!stats.ok()) return Fail("stats", stats.status());
  if (stats->tenants < 1 || stats->updates < updates.size()) {
    std::fprintf(stderr, "lps_bench_client: implausible stats (tenants "
                         "%llu, updates %llu)\n",
                 static_cast<unsigned long long>(stats->tenants),
                 static_cast<unsigned long long>(stats->updates));
    return 1;
  }

  std::printf("serve smoke OK (%llu updates, window [%llu, +%llu), "
              "restored answer matches)\n",
              static_cast<unsigned long long>(stats->updates),
              static_cast<unsigned long long>(window->start),
              static_cast<unsigned long long>(window->length));
  return 0;
}

// ------------------------------------------------------- crash recovery --

constexpr int kCrashTenants = 4;
constexpr uint64_t kCrashN = 1 << 12;
constexpr uint64_t kCrashUpdates = 3 * 8192 + 1234;  // off a window boundary

/// Fetches tenant i's snapshot and whole-stream answer and serializes
/// both into one bit stream — the unit of pre/post-crash comparison.
lps::Status FetchCrashState(lps::server::Client* client, int i,
                            lps::BitWriter* writer) {
  const std::string name = "crash" + std::to_string(i);
  auto snapshot = client->Snapshot(name, "s");
  if (!snapshot.ok()) return snapshot.status();
  auto query = client->Query(name, "s");
  if (!query.ok()) return query.status();
  SerializeSnapshot(*snapshot, writer);
  lps::SerializeQueryResult(*query, writer);
  return lps::Status::OK();
}

int RunCrashPrepare(const std::string& host, int port,
                    const std::string& out_dir) {
  auto connected = lps::server::Client::Connect(host, port);
  if (!connected.ok()) return Fail("connect", connected.status());
  lps::server::Client client = std::move(connected.value());
  for (int i = 0; i < kCrashTenants; ++i) {
    const std::string name = "crash" + std::to_string(i);
    const lps::Status created =
        client.Create(name, "s", TenantConfig(uint64_t(i), kCrashN));
    if (!created.ok()) return Fail("create", created);
    std::vector<lps::stream::Update> updates;
    updates.reserve(4096);
    for (uint64_t position = 0; position < kCrashUpdates;) {
      updates.clear();
      while (updates.size() < 4096 && position < kCrashUpdates) {
        updates.push_back(MakeUpdate(uint64_t(i), position++, kCrashN));
      }
      auto ingested = client.Ingest(name, "s", updates);
      if (!ingested.ok()) return Fail("ingest", ingested.status());
    }
  }
  for (int i = 0; i < kCrashTenants; ++i) {
    lps::BitWriter writer;
    const lps::Status fetched = FetchCrashState(&client, i, &writer);
    if (!fetched.ok()) return Fail("fetch state", fetched);
    const std::string path =
        out_dir + "/crash" + std::to_string(i) + ".bits";
    const lps::Status written = lps::WriteBitsToFile(writer, path);
    if (!written.ok()) return Fail("write state", written);
  }
  std::printf("crash prepare OK (%d tenants, %llu updates each)\n",
              kCrashTenants,
              static_cast<unsigned long long>(kCrashUpdates));
  return 0;
}

int RunCrashVerify(const std::string& host, int port,
                   const std::string& out_dir) {
  auto connected = lps::server::Client::Connect(host, port);
  if (!connected.ok()) return Fail("connect", connected.status());
  lps::server::Client client = std::move(connected.value());
  for (int i = 0; i < kCrashTenants; ++i) {
    lps::BitWriter fresh;
    const lps::Status fetched = FetchCrashState(&client, i, &fresh);
    if (!fetched.ok()) return Fail("fetch state after reboot", fetched);
    const std::string path =
        out_dir + "/crash" + std::to_string(i) + ".bits";
    auto stored = lps::ReadBitsFromFile(path);
    if (!stored.ok()) return Fail("read pre-crash state", stored.status());
    bool equal = stored->bits_remaining() == fresh.bit_count();
    const std::vector<uint64_t>& words = fresh.words();
    size_t bits = fresh.bit_count();
    for (size_t w = 0; equal && bits > 0; ++w) {
      const size_t take = bits < 64 ? bits : 64;
      // The writer guarantees the last word's trailing bits are zero, so
      // a partial tail compares against the word directly.
      equal = stored.value().ReadBits(int(take)) == words[w];
      bits -= take;
    }
    if (!equal || stored->failed()) {
      std::fprintf(stderr,
                   "lps_bench_client: tenant crash%d diverged across the "
                   "reboot (pre-crash %s vs %zu live bits)\n",
                   i, path.c_str(), fresh.bit_count());
      return 1;
    }
  }
  std::printf("crash verify OK (%d tenants bit-identical across reboot)\n",
              kCrashTenants);
  return 0;
}

// ------------------------------------------------------ dist tier verify --

/// The oracle side of the multi-process smoke: every update of the
/// planted stream applied to one local sketch — what the aggregator's
/// fold must reproduce exactly.
std::unique_ptr<lps::LinearSketch> SoloPlanted(uint64_t total) {
  auto sketch = lps::MakeSketch(lps::dist::PlantedConfig().spec);
  std::vector<lps::stream::Update> updates;
  updates.reserve(4096);
  for (uint64_t position = 0; position < total;) {
    updates.clear();
    while (updates.size() < 4096 && position < total) {
      updates.push_back(
          lps::dist::PlantedUpdate(position++, lps::dist::kPlantedUniverse));
    }
    sketch->UpdateBatch(updates.data(), updates.size());
  }
  return sketch;
}

int RunDistVerify(const std::string& host, int port, uint64_t total,
                  const std::string& tenant, const std::string& key) {
  auto connected = lps::server::Client::Connect(host, port);
  if (!connected.ok()) return Fail("connect", connected.status());
  lps::server::Client client = std::move(connected.value());

  const std::unique_ptr<lps::LinearSketch> solo = SoloPlanted(total);
  lps::BitWriter solo_state;
  solo->Serialize(&solo_state);

  auto snapshot = client.Snapshot(tenant, key);
  if (!snapshot.ok()) return Fail("snapshot", snapshot.status());
  if (snapshot->updates_seen != total) {
    std::fprintf(stderr,
                 "lps_bench_client: aggregator folded %llu updates, "
                 "expected %llu\n",
                 static_cast<unsigned long long>(snapshot->updates_seen),
                 static_cast<unsigned long long>(total));
    return 1;
  }
  const bool state_equal = snapshot->state_bits == solo_state.bit_count() &&
                           snapshot->state_words == solo_state.words();
  if (!state_equal) {
    std::fprintf(stderr,
                 "lps_bench_client: aggregator state (%zu bits) is not "
                 "bit-identical to the solo sketch (%zu bits)\n",
                 snapshot->state_bits, solo_state.bit_count());
    return 1;
  }

  auto query = client.Query(tenant, key);
  if (!query.ok()) return Fail("query", query.status());
  const QueryResult solo_answer = lps::Query(*solo);
  if (*query != solo_answer) {
    std::fprintf(stderr,
                 "lps_bench_client: aggregator answers differently from "
                 "solo:\n  %s  %s",
                 solo_answer.ToText().c_str(), query->ToText().c_str());
    return 1;
  }
  const bool heavy_found =
      std::find(query->items.begin(), query->items.end(),
                lps::dist::kPlantedHeavy) != query->items.end();
  if (!heavy_found) {
    std::fprintf(stderr,
                 "lps_bench_client: planted heavy coordinate %llu missing "
                 "from distributed answer: %s",
                 static_cast<unsigned long long>(lps::dist::kPlantedHeavy),
                 query->ToText().c_str());
    return 1;
  }
  std::printf("dist verify OK (%llu updates, %zu state bits bit-identical "
              "to solo, answers equal)\n",
              static_cast<unsigned long long>(total), snapshot->state_bits);
  return 0;
}

int RunDistGapVerify(const std::string& host, int port,
                     const std::string& tenant, const std::string& key) {
  auto connected = lps::server::Client::Connect(host, port);
  if (!connected.ok()) return Fail("connect", connected.status());
  lps::server::Client client = std::move(connected.value());

  // The killed worker disconnects without a final marker; give the
  // aggregator a generous window to notice the closed socket.
  lps::server::DistStats stats;
  bool interrupted = false;
  for (int attempt = 0; attempt < 100 && !interrupted; ++attempt) {
    auto fetched = client.FetchDistStats();
    if (!fetched.ok()) return Fail("dist stats", fetched.status());
    stats = std::move(fetched.value());
    interrupted = stats.interrupted > 0;
    if (!interrupted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  if (!interrupted) {
    std::fprintf(stderr,
                 "lps_bench_client: no interrupted lane reported after a "
                 "worker kill (%llu epochs, %llu gaps)\n",
                 static_cast<unsigned long long>(stats.epochs_folded),
                 static_cast<unsigned long long>(stats.gaps));
    return 1;
  }

  // Degraded, not down: the epochs folded before the kill still serve.
  auto query = client.Query(tenant, key);
  if (!query.ok()) return Fail("query after worker kill", query.status());
  const bool heavy_found =
      std::find(query->items.begin(), query->items.end(),
                lps::dist::kPlantedHeavy) != query->items.end();
  if (query->type != QueryResult::Type::kHeavyHitters || !heavy_found) {
    std::fprintf(stderr,
                 "lps_bench_client: degraded aggregator lost the planted "
                 "answer: %s",
                 query->ToText().c_str());
    return 1;
  }
  std::printf("dist gap verify OK (%llu interrupted lane(s), %llu epochs "
              "still served)\n",
              static_cast<unsigned long long>(stats.interrupted),
              static_cast<unsigned long long>(stats.epochs_folded));
  return 0;
}

// ---------------------------------------------------------------- bench --

struct PhaseStats {
  double rps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

PhaseStats Summarize(const std::vector<double>& micros, double seconds) {
  PhaseStats stats;
  stats.rps = seconds > 0 ? double(micros.size()) / seconds : 0;
  stats.p50_us = Percentile(micros, 0.50);
  stats.p99_us = Percentile(micros, 0.99);
  return stats;
}

struct SweepRow {
  int tenants = 0;
  PhaseStats ingest;
  PhaseStats query;
  double updates_per_sec = 0;
  /// Aggregate worker-side send throughput: the sum over client threads
  /// of each thread's own updates / its own ingest-phase wall time. The
  /// per-thread clock excludes the other phases' tail, so this is the
  /// rate the senders actually sustained — the number comparable with
  /// the distributed tier's per-worker ingest rates.
  double send_updates_per_sec = 0;
};

/// One tenant's full load: CREATE, `requests` INGEST batches, then
/// `queries` QUERY + one WINDOW. Latencies append under `mutex`;
/// `send_rate_sum` accumulates this thread's own ingest-phase rate.
void TenantLoad(const std::string& host, int port, uint64_t tenant,
                uint64_t n, size_t requests, size_t batch, size_t queries,
                std::mutex* mutex, std::vector<double>* ingest_us,
                std::vector<double>* query_us, double* send_rate_sum,
                bool* failed) {
  auto connected = lps::server::Client::Connect(host, port);
  if (!connected.ok()) {
    std::lock_guard<std::mutex> lock(*mutex);
    *failed = true;
    return;
  }
  lps::server::Client client = std::move(connected.value());
  const std::string name = "t" + std::to_string(tenant);
  if (!client.Create(name, "s", TenantConfig(tenant, n)).ok()) {
    std::lock_guard<std::mutex> lock(*mutex);
    *failed = true;
    return;
  }
  std::vector<double> my_ingest, my_query;
  std::vector<lps::stream::Update> updates(batch);
  uint64_t position = 0;
  const auto ingest_phase_start = Clock::now();
  for (size_t r = 0; r < requests; ++r) {
    for (size_t i = 0; i < batch; ++i) {
      updates[i] = MakeUpdate(tenant, position++, n);
    }
    const auto start = Clock::now();
    const bool ok = client.Ingest(name, "s", updates).ok();
    my_ingest.push_back(MicrosSince(start));
    if (!ok) {
      std::lock_guard<std::mutex> lock(*mutex);
      *failed = true;
      return;
    }
  }
  const double ingest_phase_seconds =
      std::chrono::duration<double>(Clock::now() - ingest_phase_start)
          .count();
  const double my_send_rate =
      ingest_phase_seconds > 0
          ? double(requests * batch) / ingest_phase_seconds
          : 0;
  for (size_t q = 0; q < queries; ++q) {
    const auto start = Clock::now();
    // Every 4th query materializes a trailing window instead — both
    // paths stay exercised under concurrency.
    const bool ok =
        (q % 4 == 3)
            ? client.Window(name, "s", 8192, false).ok()
            : client.Query(name, "s").ok();
    my_query.push_back(MicrosSince(start));
    if (!ok) {
      std::lock_guard<std::mutex> lock(*mutex);
      *failed = true;
      return;
    }
  }
  std::lock_guard<std::mutex> lock(*mutex);
  ingest_us->insert(ingest_us->end(), my_ingest.begin(), my_ingest.end());
  query_us->insert(query_us->end(), my_query.begin(), my_query.end());
  *send_rate_sum += my_send_rate;
}

/// Single-tenant framing comparison: the same updates once as per-batch
/// INGEST round trips and once as a pipelined INGEST_STREAM run closed
/// by one INGEST_SYNC — the satellite measurement behind the streamed
/// opcode. Returns false on any failure.
bool RunFramingCompare(const std::string& host, int port, bool quick,
                       double* rpc_ups, double* stream_ups) {
  const uint64_t n = 1 << 14;
  const size_t requests = quick ? 64 : 512;
  const size_t batch = quick ? 256 : 1024;
  auto connected = lps::server::Client::Connect(host, port);
  if (!connected.ok()) return false;
  lps::server::Client client = std::move(connected.value());

  std::vector<lps::stream::Update> updates(batch);
  const auto run = [&](const std::string& key, bool streamed,
                       double* out) -> bool {
    if (!client.Create("framing", key, TenantConfig(77, n)).ok()) {
      return false;
    }
    uint64_t position = 0;
    const auto start = Clock::now();
    for (size_t r = 0; r < requests; ++r) {
      for (size_t i = 0; i < batch; ++i) {
        updates[i] = MakeUpdate(77, position++, n);
      }
      if (streamed) {
        if (!client.StreamIngest("framing", key, updates).ok()) return false;
      } else {
        if (!client.Ingest("framing", key, updates).ok()) return false;
      }
    }
    if (streamed) {
      auto ack = client.StreamSync();
      if (!ack.ok() || ack->count != uint64_t(requests * batch)) return false;
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    *out = seconds > 0 ? double(requests * batch) / seconds : 0;
    return true;
  };
  if (!run("rpc", false, rpc_ups)) return false;
  if (!run("stream", true, stream_ups)) return false;
  // Both framings must land the same stream: equal answers or the
  // comparison is meaningless.
  auto rpc_query = client.Query("framing", "rpc");
  auto stream_query = client.Query("framing", "stream");
  if (!rpc_query.ok() || !stream_query.ok() || *rpc_query != *stream_query) {
    return false;
  }
  return true;
}

// --------------------------------------------------------------- replay --

/// Streams a trace file into the server over the pipelined INGEST_STREAM
/// framing. The async front-end reads and decodes ahead of the socket,
/// so the wire send overlaps disk I/O — this is the end-to-end
/// file-to-daemon path the src/io/ subsystem exists for.
int RunReplay(const std::string& host, int port, const std::string& path,
              const std::string& tenant, const std::string& key) {
  auto source = lps::io::MakeFileSource(path);
  if (!source.ok()) return Fail("open trace", source.status());
  lps::io::StreamFeeder feeder(std::move(source.value()));
  auto header_n = feeder.ReadHeader();
  if (!header_n.ok()) return Fail("trace header", header_n.status());
  const uint64_t n = header_n.value();

  auto connected = lps::server::Client::Connect(host, port);
  if (!connected.ok()) return Fail("connect", connected.status());
  lps::server::Client client = std::move(connected.value());
  const lps::Status created = client.Create(tenant, key, TenantConfig(0, n));
  if (!created.ok()) return Fail("create", created);

  // Ship each decoded batch without waiting for an ack; one INGEST_SYNC
  // at the end settles the whole stream.
  lps::Status send_status;
  std::vector<lps::stream::Update> batch;
  auto stats =
      feeder.Feed([&](const lps::stream::Update* updates, size_t count) {
        if (!send_status.ok()) return;
        batch.assign(updates, updates + count);
        send_status = client.StreamIngest(tenant, key, batch);
      });
  if (!stats.ok()) return Fail("replay", stats.status());
  if (!send_status.ok()) return Fail("stream ingest", send_status);
  auto ack = client.StreamSync();
  if (!ack.ok()) return Fail("stream sync", ack.status());
  if (ack->count != stats->updates) {
    std::fprintf(stderr, "lps_bench_client: server acked %llu of %llu\n",
                 static_cast<unsigned long long>(ack->count),
                 static_cast<unsigned long long>(stats->updates));
    return 1;
  }
  if (stats->malformed > 0) {
    std::fprintf(stderr, "lps_bench_client: skipped %llu malformed records\n",
                 static_cast<unsigned long long>(stats->malformed));
  }

  auto query = client.Query(tenant, key);
  if (!query.ok()) return Fail("query", query.status());
  const double seconds = stats->wall_seconds;
  std::printf("replayed %llu updates (%.1f MB) in %.3f s: %.2f Mupd/s, "
              "read-wait %.1f%%\n",
              static_cast<unsigned long long>(stats->updates),
              double(stats->bytes) / 1e6, seconds,
              seconds > 0 ? double(stats->updates) / seconds / 1e6 : 0.0,
              seconds > 0 ? 100.0 * stats->read_wait_seconds / seconds : 0.0);
  std::printf("query: %zu heavy hitters\n", query->items.size());
  return 0;
}

int RunBench(const std::string& host, int port, bool quick,
             const std::string& out_path) {
  const uint64_t n = 1 << 14;
  const size_t requests = quick ? 16 : 128;
  const size_t batch = quick ? 512 : 2048;
  const size_t queries = quick ? 8 : 32;
  const std::vector<int> tenant_counts = {1, 8, 64};

  std::vector<SweepRow> rows;
  for (int tenants : tenant_counts) {
    std::mutex mutex;
    std::vector<double> ingest_us, query_us;
    double send_rate_sum = 0;
    bool failed = false;
    const auto start = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(size_t(tenants));
    for (int t = 0; t < tenants; ++t) {
      threads.emplace_back([&, t] {
        TenantLoad(host, port, uint64_t(t) + uint64_t(tenants) * 1000, n,
                   requests, batch, queries, &mutex, &ingest_us, &query_us,
                   &send_rate_sum, &failed);
      });
    }
    for (auto& thread : threads) thread.join();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (failed) {
      std::fprintf(stderr, "lps_bench_client: tenant load failed at %d "
                           "tenants\n",
                   tenants);
      return 1;
    }
    SweepRow row;
    row.tenants = tenants;
    // Phases overlap across tenants, so each phase's rps uses the whole
    // wall time — a conservative (under-)estimate that is still
    // comparable run to run.
    row.ingest = Summarize(ingest_us, seconds);
    row.query = Summarize(query_us, seconds);
    row.updates_per_sec =
        double(size_t(tenants) * requests * batch) / seconds;
    row.send_updates_per_sec = send_rate_sum;
    rows.push_back(row);
    std::printf("tenants %2d: ingest %8.0f req/s (p50 %7.1f us, p99 %8.1f "
                "us), query %7.0f req/s (p50 %7.1f us, p99 %8.1f us), "
                "%.2f Mupd/s, send %.2f Mupd/s\n",
                tenants, row.ingest.rps, row.ingest.p50_us,
                row.ingest.p99_us, row.query.rps, row.query.p50_us,
                row.query.p99_us, row.updates_per_sec / 1e6,
                row.send_updates_per_sec / 1e6);
  }

  double rpc_ups = 0, stream_ups = 0;
  if (!RunFramingCompare(host, port, quick, &rpc_ups, &stream_ups)) {
    std::fprintf(stderr, "lps_bench_client: framing comparison failed\n");
    return 1;
  }
  std::printf("framing: RPC %.2f Mupd/s, INGEST_STREAM %.2f Mupd/s "
              "(%.2fx)\n",
              rpc_ups / 1e6, stream_ups / 1e6,
              rpc_ups > 0 ? stream_ups / rpc_ups : 0);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "lps_bench_client: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"serve\",\n  \"quick\": %s,\n"
               "  \"hardware_threads\": %u,\n  \"serve_scaling\": [\n",
               quick ? "true" : "false",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    std::fprintf(out,
                 "    {\"tenants\": %d, \"ingest_rps\": %.0f, "
                 "\"ingest_p50_us\": %.1f, \"ingest_p99_us\": %.1f, "
                 "\"query_rps\": %.0f, \"query_p50_us\": %.1f, "
                 "\"query_p99_us\": %.1f, \"updates_per_sec\": %.0f, "
                 "\"send_updates_per_sec\": %.0f}%s\n",
                 row.tenants, row.ingest.rps, row.ingest.p50_us,
                 row.ingest.p99_us, row.query.rps, row.query.p50_us,
                 row.query.p99_us, row.updates_per_sec,
                 row.send_updates_per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"stream_framing\": {\"rpc_updates_per_sec\": %.0f, "
               "\"stream_updates_per_sec\": %.0f, \"speedup\": %.3f}\n}\n",
               rpc_ups, stream_ups, rpc_ups > 0 ? stream_ups / rpc_ups : 0);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.quick = lps::bench::Quick(argc, argv);
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--port") == 0 && a + 1 < argc) {
      flags.port = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--smoke") == 0) {
      flags.smoke = true;
    } else if (std::strcmp(argv[a], "--crash-prepare") == 0) {
      flags.crash_prepare = true;
    } else if (std::strcmp(argv[a], "--crash-verify") == 0) {
      flags.crash_verify = true;
    } else if (std::strcmp(argv[a], "--dist-verify") == 0) {
      flags.dist_verify = true;
    } else if (std::strcmp(argv[a], "--dist-gap-verify") == 0) {
      flags.dist_gap_verify = true;
    } else if (std::strcmp(argv[a], "--total") == 0 && a + 1 < argc) {
      flags.total = std::strtoull(argv[++a], nullptr, 10);
    } else if (std::strcmp(argv[a], "--tenant") == 0 && a + 1 < argc) {
      flags.tenant = argv[++a];
    } else if (std::strcmp(argv[a], "--key") == 0 && a + 1 < argc) {
      flags.key = argv[++a];
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      flags.out = argv[++a];
    } else if (std::strcmp(argv[a], "--replay") == 0 && a + 1 < argc) {
      flags.replay = argv[++a];
    } else if (std::strcmp(argv[a], "--quick") == 0) {
      // handled by bench::Quick
    } else {
      std::fprintf(stderr,
                   "usage: lps_bench_client [--port p] [--quick] [--smoke] "
                   "[--out file] [--crash-prepare | --crash-verify] "
                   "[--dist-verify | --dist-gap-verify] [--replay FILE] "
                   "[--total n] [--tenant t] [--key k]\n");
      return 2;
    }
  }
  if ((flags.dist_verify || flags.dist_gap_verify) && flags.port == 0) {
    // The dist modes check an external aggregator that workers shipped
    // into; an in-process empty server has nothing to verify.
    std::fprintf(stderr, "lps_bench_client: dist modes need --port\n");
    return 2;
  }
  if (flags.crash_prepare || flags.crash_verify) {
    // The crash modes only make sense against an external daemon that
    // the harness can SIGKILL; --out names the state DIRECTORY here.
    if (flags.port == 0 || flags.out == "BENCH_serve.json") {
      std::fprintf(stderr,
                   "lps_bench_client: crash modes need --port and --out "
                   "(a state directory)\n");
      return 2;
    }
  }

  // No --port: serve ourselves on an ephemeral loopback port, so the
  // bench still measures the real socket round trip.
  std::unique_ptr<lps::server::Server> in_process;
  int port = flags.port;
  if (port == 0) {
    lps::server::Server::Options options;
    options.port = 0;
    in_process = std::make_unique<lps::server::Server>(options);
    const lps::Status started = in_process->Start();
    if (!started.ok()) return Fail("in-process server", started);
    port = in_process->port();
    std::printf("in-process lps_serve on 127.0.0.1:%d\n", port);
  }

  int exit_code = 0;
  if (flags.dist_verify) {
    exit_code =
        RunDistVerify("127.0.0.1", port, flags.total, flags.tenant, flags.key);
  } else if (flags.dist_gap_verify) {
    exit_code = RunDistGapVerify("127.0.0.1", port, flags.tenant, flags.key);
  } else if (flags.crash_prepare) {
    exit_code = RunCrashPrepare("127.0.0.1", port, flags.out);
  } else if (flags.crash_verify) {
    exit_code = RunCrashVerify("127.0.0.1", port, flags.out);
  } else if (!flags.replay.empty()) {
    exit_code =
        RunReplay("127.0.0.1", port, flags.replay, flags.tenant, flags.key);
  } else if (flags.smoke) {
    exit_code = RunSmoke("127.0.0.1", port);
  } else {
    exit_code = RunBench("127.0.0.1", port, flags.quick, flags.out);
  }
  if (in_process != nullptr) in_process->Stop();
  return exit_code;
}
