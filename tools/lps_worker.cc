// lps_worker — one ingest worker of the distributed aggregation tier.
//
// Generates its strided slice of the deterministic planted stream
// (src/dist/planted.h), drives it through a local ingestion topology
// (optionally a ParallelPipeline), and ships sealed epoch deltas to an
// aggregator (lps_serve) over TCP. W workers launched with
// --stride W --offset 0..W-1 and the same --total together ingest
// exactly the solo stream, so the aggregator's answers are
// byte-comparable with a single-process ingest of --total updates —
// the CI multi-process smoke and bench_distributed are built on this.
//
// Usage:
//   lps_worker --port p [--host h] [--tenant t] [--key k]
//              [--total n] [--offset i] [--stride w]
//              [--epoch-interval n] [--shards s] [--threads t]
//              [--worker-id id] [--session n] [--batch n]
//              [--throttle-us n] [--from FILE]
//
// --throttle-us sleeps between batches — the CI kill smoke uses it to
// catch a worker mid-stream deterministically. --session defaults to a
// per-boot nonce; pass it explicitly to model a worker RESTART
// continuing (new session, same worker id).
//
// --from FILE replaces the planted stream: the worker ingests a trace
// file (text or binary, '-' = stdin) through the async front-end
// (src/io/StreamFeeder) — reads prefetch and decode overlap the
// pipeline + epoch shipping, and the stream is never materialized. The
// universe size comes from the trace header; --total/--offset/--stride
// are rejected alongside it (slicing a file replay is the shell's job:
// feed each worker its own file).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/dist/planted.h"
#include "src/dist/worker.h"
#include "src/io/byte_source.h"
#include "src/io/stream_feeder.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lps_worker --port p [--host h] [--tenant t] [--key k]\n"
               "                  [--total n] [--offset i] [--stride w]\n"
               "                  [--epoch-interval n] [--shards s] "
               "[--threads t]\n"
               "                  [--worker-id id] [--session n] [--batch n]\n"
               "                  [--throttle-us n] [--from FILE]\n");
  return 2;
}

bool ParseU64(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = uint64_t(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lps::dist::Worker::Options options;
  options.tenant = "dist";
  options.key = "s";
  options.config = lps::dist::PlantedConfig();
  options.worker_id = "w0";
  options.session = 0;
  uint64_t total = 1 << 16;
  uint64_t offset = 0;
  uint64_t stride = 1;
  uint64_t batch = 512;
  uint64_t throttle_us = 0;
  bool have_port = false;
  bool have_slice_flag = false;  // --total/--offset/--stride given
  std::string from;
  for (int a = 1; a < argc; ++a) {
    uint64_t value = 0;
    if (std::strcmp(argv[a], "--port") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &value) || value > 65535) return Usage();
      options.uplink.port = int(value);
      have_port = true;
      ++a;
    } else if (std::strcmp(argv[a], "--host") == 0 && a + 1 < argc) {
      options.uplink.host = argv[a + 1];
      ++a;
    } else if (std::strcmp(argv[a], "--tenant") == 0 && a + 1 < argc) {
      options.tenant = argv[a + 1];
      ++a;
    } else if (std::strcmp(argv[a], "--key") == 0 && a + 1 < argc) {
      options.key = argv[a + 1];
      ++a;
    } else if (std::strcmp(argv[a], "--total") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &total)) return Usage();
      have_slice_flag = true;
      ++a;
    } else if (std::strcmp(argv[a], "--offset") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &offset)) return Usage();
      have_slice_flag = true;
      ++a;
    } else if (std::strcmp(argv[a], "--stride") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &stride) || stride == 0) return Usage();
      have_slice_flag = true;
      ++a;
    } else if (std::strcmp(argv[a], "--from") == 0 && a + 1 < argc) {
      from = argv[a + 1];
      ++a;
    } else if (std::strcmp(argv[a], "--epoch-interval") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &options.epoch_interval)) return Usage();
      ++a;
    } else if (std::strcmp(argv[a], "--shards") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &value) || value > 1024) return Usage();
      options.config.shards = int32_t(value);
      ++a;
    } else if (std::strcmp(argv[a], "--threads") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &value) || value > 1024) return Usage();
      options.config.threads = int32_t(value);
      ++a;
    } else if (std::strcmp(argv[a], "--worker-id") == 0 && a + 1 < argc) {
      options.worker_id = argv[a + 1];
      ++a;
    } else if (std::strcmp(argv[a], "--session") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &options.session)) return Usage();
      ++a;
    } else if (std::strcmp(argv[a], "--batch") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &batch) || batch == 0) return Usage();
      ++a;
    } else if (std::strcmp(argv[a], "--throttle-us") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &throttle_us)) return Usage();
      ++a;
    } else {
      return Usage();
    }
  }
  if (!have_port) return Usage();
  if (!from.empty() && have_slice_flag) {
    std::fprintf(stderr,
                 "lps_worker: --from replaces the planted stream; "
                 "--total/--offset/--stride do not apply to a file replay\n");
    return 2;
  }
  // File replay: prime the feeder first — the trace header's universe
  // size replaces the planted one in the worker's sketch config.
  std::unique_ptr<lps::io::StreamFeeder> feeder;
  if (!from.empty()) {
    auto source = lps::io::MakeFileSource(from);
    if (!source.ok()) {
      std::fprintf(stderr, "lps_worker: cannot open %s: %s\n", from.c_str(),
                   source.status().ToString().c_str());
      return 1;
    }
    feeder =
        std::make_unique<lps::io::StreamFeeder>(std::move(source.value()));
    auto header_n = feeder->ReadHeader();
    if (!header_n.ok()) {
      std::fprintf(stderr, "lps_worker: bad trace in %s: %s\n", from.c_str(),
                   header_n.status().ToString().c_str());
      return 1;
    }
    options.config.spec.n = header_n.value();
  }
  if (options.session == 0) {
    // Per-boot nonce: restarts must look like new sessions upstream.
    options.session =
        uint64_t(std::chrono::system_clock::now().time_since_epoch().count()) ^
        (uint64_t(::getpid()) << 32);
  }

  auto built = lps::dist::Worker::Create(std::move(options));
  if (!built.ok()) {
    std::fprintf(stderr, "lps_worker: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  lps::dist::Worker& worker = *built.value();

  if (feeder != nullptr) {
    // Async replay: decoded batches flow straight into Push (which seals
    // and ships epochs at its interval); the prefetcher and decoder run
    // ahead on their own threads. A Push failure (dead aggregator past
    // the retry budget) poisons the rest of the feed.
    lps::Status push_status;
    auto stats = feeder->Feed([&](const lps::stream::Update* u, size_t c) {
      if (!push_status.ok()) return;
      push_status = worker.Push(u, c);
      if (throttle_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(throttle_us));
      }
    });
    if (!stats.ok()) {
      std::fprintf(stderr, "lps_worker: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (!push_status.ok()) {
      std::fprintf(stderr, "lps_worker: %s\n", push_status.ToString().c_str());
      return 1;
    }
    if (stats.value().malformed > 0) {
      std::fprintf(stderr, "lps_worker: skipped %llu malformed records\n",
                   static_cast<unsigned long long>(stats.value().malformed));
    }
    const lps::Status finished = worker.Finish();
    if (!finished.ok()) {
      std::fprintf(stderr, "lps_worker: %s\n", finished.ToString().c_str());
      return 1;
    }
    std::printf("lps_worker done: %llu updates in %llu epochs\n",
                static_cast<unsigned long long>(worker.updates_pushed()),
                static_cast<unsigned long long>(worker.epochs_shipped()));
    return 0;
  }

  const uint64_t n = lps::dist::kPlantedUniverse;
  std::vector<lps::stream::Update> updates;
  updates.reserve(size_t(batch));
  for (uint64_t position = offset; position < total; position += stride) {
    updates.push_back(lps::dist::PlantedUpdate(position, n));
    if (updates.size() == batch) {
      const lps::Status pushed = worker.Push(updates);
      if (!pushed.ok()) {
        std::fprintf(stderr, "lps_worker: %s\n", pushed.ToString().c_str());
        return 1;
      }
      updates.clear();
      if (throttle_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(throttle_us));
      }
    }
  }
  if (!updates.empty()) {
    const lps::Status pushed = worker.Push(updates);
    if (!pushed.ok()) {
      std::fprintf(stderr, "lps_worker: %s\n", pushed.ToString().c_str());
      return 1;
    }
  }
  const lps::Status finished = worker.Finish();
  if (!finished.ok()) {
    std::fprintf(stderr, "lps_worker: %s\n", finished.ToString().c_str());
    return 1;
  }
  std::printf("lps_worker done: %llu updates in %llu epochs\n",
              static_cast<unsigned long long>(worker.updates_pushed()),
              static_cast<unsigned long long>(worker.epochs_shipped()));
  return 0;
}
