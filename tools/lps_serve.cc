// lps_serve — the multi-tenant sketch daemon.
//
// Owns a registry of named LinearSketches (tenant/key -> sketch) and
// speaks the length-prefixed binary protocol of src/server/protocol.h
// over TCP on 127.0.0.1: clients CREATE a sketch from a SketchSpec (the
// same construction registry the library and CLI use), INGEST update
// batches (optionally through a per-tenant ParallelPipeline), QUERY
// whole streams or trailing WINDOWs (per-tenant WindowManager), and
// SNAPSHOT/RESTORE full serialized state across daemon restarts.
//
// Usage:
//   lps_serve [--port p]
//
// --port 0 (the default) binds an ephemeral port; the chosen port is
// printed on the "listening" line, which scripts (the CI serve smoke,
// the bench client) parse. SIGTERM/SIGINT shut down cleanly: stop
// accepting, drain and join every connection, exit 0.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/server/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Usage() {
  std::fprintf(stderr, "usage: lps_serve [--port p]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--port") == 0 && a + 1 < argc) {
      char* end = nullptr;
      const long value = std::strtol(argv[a + 1], &end, 10);
      if (end == argv[a + 1] || *end != '\0' || value < 0 || value > 65535) {
        return Usage();
      }
      port = static_cast<int>(value);
      ++a;
    } else {
      return Usage();
    }
  }

  lps::server::Server::Options options;
  options.port = port;
  lps::server::Server server(options);
  const lps::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "lps_serve: %s\n", started.ToString().c_str());
    return 1;
  }

  struct sigaction action {};
  action.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  std::printf("lps_serve listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server.Stop();
  const lps::server::ServerStats stats = server.registry().Stats();
  std::printf("lps_serve shut down cleanly: %llu tenants, %llu updates, "
              "%llu ingests, %llu queries, %llu snapshots\n",
              static_cast<unsigned long long>(stats.tenants),
              static_cast<unsigned long long>(stats.updates),
              static_cast<unsigned long long>(stats.ingests),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.snapshots));
  return 0;
}
