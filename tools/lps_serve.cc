// lps_serve — the multi-tenant sketch daemon.
//
// Owns a registry of named LinearSketches (tenant/key -> sketch) and
// speaks the length-prefixed binary protocol of src/server/protocol.h
// over TCP on 127.0.0.1: clients CREATE a sketch from a SketchSpec (the
// same construction registry the library and CLI use), INGEST update
// batches (optionally through a per-tenant ParallelPipeline), QUERY
// whole streams or trailing WINDOWs (per-tenant WindowManager), and
// SNAPSHOT/RESTORE full serialized state across daemon restarts.
//
// Usage:
//   lps_serve [--port p] [--data-dir dir] [--snapshot-interval-ms n]
//             [--idle-timeout-ms n] [--resident-checkpoints n]
//
// --port 0 (the default) binds an ephemeral port; the chosen port is
// printed on the "listening" line, which scripts (the CI serve smoke,
// the bench client) parse. SIGTERM/SIGINT shut down cleanly: stop
// accepting, drain and join every connection, exit 0.
//
// --data-dir enables the durable checkpoint store: tenants are
// snapshotted in the background every --snapshot-interval-ms, restored
// on boot (a SIGKILL'd daemon comes back answering identically up to
// the last completed snapshot pass), and — with --idle-timeout-ms —
// evicted from RAM when idle, rehydrating lazily on next touch.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/kernels/kernels.h"
#include "src/server/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Usage() {
  std::fprintf(stderr,
               "usage: lps_serve [--port p] [--data-dir dir]\n"
               "                 [--snapshot-interval-ms n] "
               "[--idle-timeout-ms n]\n"
               "                 [--resident-checkpoints n]\n");
  return 2;
}

bool ParseU64(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = uint64_t(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lps::server::Server::Options options;
  for (int a = 1; a < argc; ++a) {
    uint64_t value = 0;
    if (std::strcmp(argv[a], "--port") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &value) || value > 65535) return Usage();
      options.port = int(value);
      ++a;
    } else if (std::strcmp(argv[a], "--data-dir") == 0 && a + 1 < argc) {
      options.data_dir = argv[a + 1];
      ++a;
    } else if (std::strcmp(argv[a], "--snapshot-interval-ms") == 0 &&
               a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &value)) return Usage();
      options.snapshot_interval_ms = value;
      ++a;
    } else if (std::strcmp(argv[a], "--idle-timeout-ms") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &value)) return Usage();
      options.idle_timeout_ms = value;
      ++a;
    } else if (std::strcmp(argv[a], "--resident-checkpoints") == 0 &&
               a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &value)) return Usage();
      options.resident_checkpoints = size_t(value);
      ++a;
    } else {
      return Usage();
    }
  }

  lps::server::Server server(options);
  const lps::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "lps_serve: %s\n", started.ToString().c_str());
    return 1;
  }

  struct sigaction action {};
  action.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  std::printf("lps_serve listening on 127.0.0.1:%d\n", server.port());
  std::printf("lps_serve kernel backend: %s\n",
              lps::kernels::ActiveBackendName());
  if (!options.data_dir.empty()) {
    std::printf("lps_serve data dir %s: %llu tenants restored, "
                "%llu torn bytes dropped\n",
                options.data_dir.c_str(),
                static_cast<unsigned long long>(server.restored_tenants()),
                static_cast<unsigned long long>(
                    server.store()->recovered_truncated_bytes()));
  }
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server.Stop();
  const lps::server::ServerStats stats = server.registry().Stats();
  std::printf("lps_serve shut down cleanly: %llu tenants, %llu updates, "
              "%llu ingests, %llu queries, %llu snapshots, "
              "kernel backend %s\n",
              static_cast<unsigned long long>(stats.tenants),
              static_cast<unsigned long long>(stats.updates),
              static_cast<unsigned long long>(stats.ingests),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.snapshots),
              stats.kernel_backend.c_str());
  // Per-tenant persistence accounting (the STATS opcode reports the same
  // numbers to clients); only meaningful with a data dir attached.
  for (const lps::server::TenantPersistStats& tenant : stats.per_tenant) {
    std::printf("  %s: %llu resident bytes, %llu spilled bytes%s\n",
                tenant.name.c_str(),
                static_cast<unsigned long long>(tenant.resident_bytes),
                static_cast<unsigned long long>(tenant.spilled_bytes),
                tenant.resident ? "" : " (evicted)");
  }
  return 0;
}
