// lps_serve — the multi-tenant sketch daemon.
//
// Owns a registry of named LinearSketches (tenant/key -> sketch) and
// speaks the length-prefixed binary protocol of src/server/protocol.h
// over TCP on 127.0.0.1: clients CREATE a sketch from a SketchSpec (the
// same construction registry the library and CLI use), INGEST update
// batches (optionally through a per-tenant ParallelPipeline), QUERY
// whole streams or trailing WINDOWs (per-tenant WindowManager), and
// SNAPSHOT/RESTORE full serialized state across daemon restarts.
//
// Usage:
//   lps_serve [--port p] [--data-dir dir] [--snapshot-interval-ms n]
//             [--idle-timeout-ms n] [--resident-checkpoints n]
//
// --port 0 (the default) binds an ephemeral port; the chosen port is
// printed on the "listening" line, which scripts (the CI serve smoke,
// the bench client) parse. SIGTERM/SIGINT shut down cleanly: stop
// accepting, drain and join every connection, exit 0.
//
// --data-dir enables the durable checkpoint store: tenants are
// snapshotted in the background every --snapshot-interval-ms, restored
// on boot (a SIGKILL'd daemon comes back answering identically up to
// the last completed snapshot pass), and — with --idle-timeout-ms —
// evicted from RAM when idle, rehydrating lazily on next touch.
//
// Every lps_serve is also a distributed-tier AGGREGATOR (src/dist/):
// lps_worker processes ship sealed epoch deltas which fold into the
// registry with Merge, so the global prefix is served by the same
// QUERY/WINDOW/SNAPSHOT surface. With --upstream host:port the daemon
// runs as an interior COMBINER of a fan-in tree instead: child epochs
// fold locally and the combined delta ships one level up every
// --flush-interval-ms.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/dist/aggregator.h"
#include "src/kernels/kernels.h"
#include "src/server/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Usage() {
  std::fprintf(stderr,
               "usage: lps_serve [--port p] [--data-dir dir]\n"
               "                 [--snapshot-interval-ms n] "
               "[--idle-timeout-ms n]\n"
               "                 [--resident-checkpoints n]\n"
               "                 [--upstream host:port] [--node-id id]\n"
               "                 [--flush-interval-ms n]\n");
  return 2;
}

bool ParseU64(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = uint64_t(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lps::server::Server::Options options;
  lps::dist::Aggregator::Options dist_options;
  bool combiner = false;
  for (int a = 1; a < argc; ++a) {
    uint64_t value = 0;
    if (std::strcmp(argv[a], "--upstream") == 0 && a + 1 < argc) {
      const std::string upstream = argv[a + 1];
      const size_t colon = upstream.rfind(':');
      if (colon == std::string::npos ||
          !ParseU64(upstream.c_str() + colon + 1, &value) || value > 65535) {
        return Usage();
      }
      dist_options.upstream_host = upstream.substr(0, colon);
      dist_options.upstream_port = int(value);
      combiner = true;
      ++a;
    } else if (std::strcmp(argv[a], "--node-id") == 0 && a + 1 < argc) {
      dist_options.node_id = argv[a + 1];
      ++a;
    } else if (std::strcmp(argv[a], "--flush-interval-ms") == 0 &&
               a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &value) || value == 0) return Usage();
      dist_options.flush_interval_ms = value;
      ++a;
    } else if (std::strcmp(argv[a], "--port") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &value) || value > 65535) return Usage();
      options.port = int(value);
      ++a;
    } else if (std::strcmp(argv[a], "--data-dir") == 0 && a + 1 < argc) {
      options.data_dir = argv[a + 1];
      ++a;
    } else if (std::strcmp(argv[a], "--snapshot-interval-ms") == 0 &&
               a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &value)) return Usage();
      options.snapshot_interval_ms = value;
      ++a;
    } else if (std::strcmp(argv[a], "--idle-timeout-ms") == 0 && a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &value)) return Usage();
      options.idle_timeout_ms = value;
      ++a;
    } else if (std::strcmp(argv[a], "--resident-checkpoints") == 0 &&
               a + 1 < argc) {
      if (!ParseU64(argv[a + 1], &value)) return Usage();
      options.resident_checkpoints = size_t(value);
      ++a;
    } else {
      return Usage();
    }
  }

  lps::server::Server server(options);
  if (!combiner) dist_options.registry = &server.registry();
  // Per-boot nonce on the combiner's upstream lane: a restarted
  // combiner must not continue the old session's sequence space.
  dist_options.upstream_session =
      uint64_t(std::chrono::system_clock::now().time_since_epoch().count()) |
      1;
  lps::dist::Aggregator aggregator(dist_options);
  server.set_extension(&aggregator);
  const lps::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "lps_serve: %s\n", started.ToString().c_str());
    return 1;
  }
  const lps::Status dist_started = aggregator.Start();
  if (!dist_started.ok()) {
    std::fprintf(stderr, "lps_serve: %s\n", dist_started.ToString().c_str());
    server.Stop();
    return 1;
  }

  struct sigaction action {};
  action.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  std::printf("lps_serve listening on 127.0.0.1:%d\n", server.port());
  std::printf("lps_serve kernel backend: %s\n",
              lps::kernels::ActiveBackendName());
  if (combiner) {
    std::printf("lps_serve combiner %s -> %s:%d\n",
                dist_options.node_id.c_str(),
                dist_options.upstream_host.c_str(),
                dist_options.upstream_port);
  }
  if (!options.data_dir.empty()) {
    std::printf("lps_serve data dir %s: %llu tenants restored, "
                "%llu torn bytes dropped\n",
                options.data_dir.c_str(),
                static_cast<unsigned long long>(server.restored_tenants()),
                static_cast<unsigned long long>(
                    server.store()->recovered_truncated_bytes()));
  }
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server.Stop();
  aggregator.Stop();
  const lps::server::DistStats dist_stats = aggregator.Stats();
  if (dist_stats.epochs_folded > 0 || combiner) {
    std::printf("lps_serve dist: %llu epochs folded, %llu updates, "
                "%llu gaps, %llu sessions\n",
                static_cast<unsigned long long>(dist_stats.epochs_folded),
                static_cast<unsigned long long>(dist_stats.updates_folded),
                static_cast<unsigned long long>(dist_stats.gaps),
                static_cast<unsigned long long>(dist_stats.sessions));
  }
  const lps::server::ServerStats stats = server.registry().Stats();
  std::printf("lps_serve shut down cleanly: %llu tenants, %llu updates, "
              "%llu ingests, %llu queries, %llu snapshots, "
              "kernel backend %s\n",
              static_cast<unsigned long long>(stats.tenants),
              static_cast<unsigned long long>(stats.updates),
              static_cast<unsigned long long>(stats.ingests),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.snapshots),
              stats.kernel_backend.c_str());
  // Per-tenant persistence accounting (the STATS opcode reports the same
  // numbers to clients); only meaningful with a data dir attached.
  for (const lps::server::TenantPersistStats& tenant : stats.per_tenant) {
    std::printf("  %s: %llu resident bytes, %llu spilled bytes%s\n",
                tenant.name.c_str(),
                static_cast<unsigned long long>(tenant.resident_bytes),
                static_cast<unsigned long long>(tenant.spilled_bytes),
                tenant.resident ? "" : " (evicted)");
  }
  return 0;
}
