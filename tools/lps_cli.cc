// lps_cli — command-line driver for the library: generate workload traces,
// replay them through any sampler or sketch, persist and merge sketch
// state, and print results. The tool a downstream user reaches for before
// writing code.
//
// Usage:
//   lps_cli gen <kind> <n> <arg> <seed> [--binary]   write a trace to stdout
//       kinds: turnstile <#updates> | sparse <#nonzero> |
//              zipf <scale> | duplicates <extras>
//   lps_cli sample <p|L0> <eps> <delta> <seed>
//           [--shards k] [--threads t] [--window w [--checkpoint c]]
//           [--from FILE]
//   lps_cli duplicates <delta> <seed> [--from FILE]  < trace  find a duplicate
//   lps_cli heavy <p> <phi> <seed> [--shards k] [--threads t]
//           [--window w [--checkpoint c]] [--from FILE]        < trace
//   lps_cli norm <p> <seed> [--shards k] [--threads t]
//           [--window w [--checkpoint c]] [--from FILE]        < trace
//   lps_cli stats [--from FILE]                < trace    exact summary
//   lps_cli save sample <p|L0> <eps> <delta> <seed> <file>  < trace
//   lps_cli save heavy <p> <phi> <seed> <file>              < trace
//   lps_cli save norm <p> <seed> <file>                     < trace
//   lps_cli save duplicates <delta> <seed> <file>           < trace
//   lps_cli load <file>                        restore state and query it
//   lps_cli merge <out> <in1> <in2> [in...]    add saved states (linearity)
//   lps_cli version                            dispatched kernel + io backend
//
// save writes the full LinearSketch state (versioned header, params,
// seeds, counters); load reconstructs without any out-of-band information
// (DeserializeAnySketch dispatches on the kind tag, so any sketch kind
// loads); merge requires all inputs to come from identically-parameterized
// structures (shard replicas) and writes their coordinate-wise sum.
// --shards k ingests through the k-shard parallel runtime and merges the
// replicas before querying — same answers as single-stream ingestion, by
// linearity. --threads t (t in [1, k]; omit the flag for inline
// single-threaded ingestion) runs t worker threads; the final state is
// bit-identical for every thread count, so the flag is purely a
// throughput knob.
// --window w answers the query over (at least) the LAST w updates of the
// trace instead of the whole stream: ingestion flows through a
// WindowManager that checkpoints a serialized prefix every --checkpoint c
// updates (default 4096), and the windowed sketch is materialized by
// subtraction (prefix_now - prefix_expired, O(sketch size)). The window
// start rounds down to a checkpoint boundary; the chosen range is
// printed. With --shards k the checkpoints seal at parallel-runtime
// epoch boundaries (every c updates, after MergeShards), so windows and
// sharding compose.
// --from FILE ingests through the async front-end (src/io/): a prefetch
// thread reads the file while the decoder and the pipeline run, and the
// update stream is never materialized in memory — the path for replays
// larger than RAM. FILE may be '-' for stdin; text and binary traces are
// auto-detected. Without --from, the trace is read (and materialized)
// from stdin exactly as before. Final sketch state is bit-identical
// either way at the same --shards/--threads topology (tests/io_test.cc).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/kernels/kernels.h"
#include "src/lps.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  lps_cli gen {turnstile|sparse|zipf|duplicates} <n> <arg> <seed>"
      " [--binary]\n"
      "  lps_cli sample {<p>|L0} <eps> <delta> <seed>"
      " [--shards k] [--threads t] [--window w [--checkpoint c]]"
      " [--from FILE]\n"
      "  lps_cli duplicates <delta> <seed> [--from FILE]           < trace\n"
      "  lps_cli heavy <p> <phi> <seed> [--shards k] [--threads t]"
      " [--window w [--checkpoint c]] [--from FILE]                < trace\n"
      "  lps_cli norm <p> <seed> [--shards k] [--threads t]"
      " [--window w [--checkpoint c]] [--from FILE]                < trace\n"
      "  lps_cli stats [--from FILE]                               < trace\n"
      "  lps_cli save sample {<p>|L0} <eps> <delta> <seed> <file>  < trace\n"
      "  lps_cli save heavy <p> <phi> <seed> <file>                < trace\n"
      "  lps_cli save norm <p> <seed> <file>                       < trace\n"
      "  lps_cli save duplicates <delta> <seed> <file>             < trace\n"
      "  lps_cli load <file>\n"
      "  lps_cli merge <out> <in1> <in2> [in...]\n"
      "  lps_cli version\n");
  return 2;
}

/// Runtime info line: which SIMD kernel backend this process dispatched
/// (and the full set the binary + host could run) plus the file-read
/// backend --from resolves to — the quick way to see what LPS_KERNELS
/// and LPS_IO resolved to.
int CmdVersion() {
  std::printf("lps_cli — Lp sampler library (JST11)\n");
  std::printf("kernel backend: %s (available:",
              lps::kernels::ActiveBackendName());
  for (const auto backend : lps::kernels::AvailableBackends()) {
    std::printf(" %s", lps::kernels::BackendName(backend));
  }
  std::printf(")\n");
  std::printf("io backend: %s\n", lps::io::IoBackendName());
  return 0;
}

/// Strips an embedded "<flag> v" from argv, returning the parsed count.
/// Returns `fallback` when the flag is absent, and -1 (after an error
/// message) when the value is missing, non-numeric, trailing-garbage,
/// < 1, or > max — silently clamping a typo like "--shards x4" or
/// "--threads 0" would ingest with a topology the user did not ask for.
/// argc is updated in place; *found (optional) reports whether the flag
/// was present at all.
int TakeCountFlag(int* argc, char** argv, const char* flag, int fallback,
                  long max = 1 << 20, bool* found = nullptr) {
  if (found != nullptr) *found = false;
  for (int a = 2; a < *argc; ++a) {
    if (std::strcmp(argv[a], flag) != 0) continue;
    if (found != nullptr) *found = true;
    if (a + 1 >= *argc) {
      std::fprintf(stderr, "%s needs a value\n", flag);
      return -1;
    }
    char* end = nullptr;
    const long value = std::strtol(argv[a + 1], &end, 10);
    if (end == argv[a + 1] || *end != '\0' || value < 1 || value > max) {
      std::fprintf(stderr, "%s wants a positive integer in [1, %ld], got "
                   "'%s'\n", flag, max, argv[a + 1]);
      return -1;
    }
    for (int b = a + 2; b < *argc; ++b) argv[b - 2] = argv[b];
    *argc -= 2;
    return static_cast<int>(value);
  }
  return fallback;
}

/// Strips "--from PATH" from argv. Returns false (after an error message)
/// when the flag is present without a value; *path is left empty when the
/// flag is absent (read the trace from stdin, materialized).
bool TakeFromFlag(int* argc, char** argv, std::string* path) {
  for (int a = 2; a < *argc; ++a) {
    if (std::strcmp(argv[a], "--from") != 0) continue;
    if (a + 1 >= *argc) {
      std::fprintf(stderr, "--from needs a path ('-' = stdin)\n");
      return false;
    }
    *path = argv[a + 1];
    for (int b = a + 2; b < *argc; ++b) argv[b - 2] = argv[b];
    *argc -= 2;
    return true;
  }
  return true;
}

/// Strips a bare boolean flag from argv; returns whether it was present.
bool TakeBoolFlag(int* argc, char** argv, const char* flag) {
  for (int a = 2; a < *argc; ++a) {
    if (std::strcmp(argv[a], flag) != 0) continue;
    for (int b = a + 1; b < *argc; ++b) argv[b - 1] = argv[b];
    *argc -= 1;
    return true;
  }
  return false;
}

/// Parses both ingestion-topology flags. Returns false (usage error) if
/// either is malformed, or if threads exceeds shards — the runtime runs
/// at most one worker per shard, and silently running fewer workers than
/// asked would misrepresent the topology. shards defaults to 1, threads
/// to 0 (inline ingestion on the caller thread).
bool TakeTopologyFlags(int* argc, char** argv, int* shards, int* threads) {
  *shards = TakeCountFlag(argc, argv, "--shards", 1);
  if (*shards < 0) return false;
  *threads = TakeCountFlag(argc, argv, "--threads", 0);
  if (*threads < 0) return false;
  if (*threads > *shards) {
    std::fprintf(stderr,
                 "--threads %d exceeds --shards %d: the runtime runs one "
                 "worker per shard\n",
                 *threads, *shards);
    return false;
  }
  return true;
}

/// Sliding-window request: window == 0 means "whole stream" (no window
/// machinery at all).
struct WindowSpec {
  uint64_t window = 0;
  uint64_t checkpoint = 4096;
};

/// Parses --window w and --checkpoint c. Returns false (usage error) on a
/// malformed value or a --checkpoint without --window (the flag would
/// silently do nothing).
bool TakeWindowFlags(int* argc, char** argv, WindowSpec* spec) {
  // Windows and checkpoint intervals are update counts, not topology
  // sizes — allow up to 2^30 (counts stay in int range for TakeCountFlag).
  constexpr long kMaxUpdates = 1L << 30;
  const int window =
      TakeCountFlag(argc, argv, "--window", 0, kMaxUpdates);
  if (window < 0) return false;
  bool checkpoint_given = false;
  const int checkpoint = TakeCountFlag(argc, argv, "--checkpoint", 4096,
                                       kMaxUpdates, &checkpoint_given);
  if (checkpoint < 0) return false;
  if (window == 0 && checkpoint_given) {
    std::fprintf(stderr, "--checkpoint only makes sense with --window\n");
    return false;
  }
  spec->window = static_cast<uint64_t>(window);
  spec->checkpoint = static_cast<uint64_t>(checkpoint);
  return true;
}

lps::Result<lps::stream::Trace> LoadTrace() {
  auto trace = lps::stream::ReadTrace(std::cin);
  if (!trace.ok()) {
    std::fprintf(stderr, "bad trace: %s\n",
                 trace.status().ToString().c_str());
  }
  return trace;
}

/// The stream behind a command: either a trace materialized from stdin
/// (the historical default) or a primed async StreamFeeder over --from
/// FILE, which never materializes the update stream.
struct StreamInput {
  uint64_t n = 0;
  lps::stream::Trace trace;                       // when feeder == nullptr
  std::unique_ptr<lps::io::StreamFeeder> feeder;  // async when set
};

std::unique_ptr<StreamInput> OpenInput(const std::string& from) {
  auto input = std::make_unique<StreamInput>();
  if (from.empty()) {
    auto trace = LoadTrace();
    if (!trace.ok()) return nullptr;
    input->trace = std::move(trace.value());
    input->n = input->trace.n;
    return input;
  }
  auto source = lps::io::MakeFileSource(from);
  if (!source.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", from.c_str(),
                 source.status().ToString().c_str());
    return nullptr;
  }
  input->feeder =
      std::make_unique<lps::io::StreamFeeder>(std::move(source.value()));
  auto n = input->feeder->ReadHeader();
  if (!n.ok()) {
    std::fprintf(stderr, "bad trace in %s: %s\n", from.c_str(),
                 n.status().ToString().c_str());
    return nullptr;
  }
  input->n = n.value();
  return input;
}

/// Reports a feeder run: an I/O error is fatal, skipped malformed records
/// are noted — a replay keeps going when one producer wrote one bad line,
/// but not silently.
bool ReportFeed(const lps::Result<lps::io::FeedStats>& stats) {
  if (!stats.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 stats.status().ToString().c_str());
    return false;
  }
  if (stats->malformed > 0) {
    std::fprintf(stderr, "note: skipped %llu malformed records\n",
                 static_cast<unsigned long long>(stats->malformed));
  }
  return true;
}

/// Async ingest: drains the feeder into the replicas through the parallel
/// runtime. With a WindowManager attached, PipelineSink closes an epoch
/// (MergeShards + SealEpoch) every `interval` updates — the same
/// boundaries solo ingestion seals at; without one, the single epoch
/// closes at end of stream.
bool FeedSharded(lps::io::StreamFeeder* feeder,
                 const std::vector<lps::LinearSketch*>& replicas, int threads,
                 lps::stream::WindowManager* wm, uint64_t interval) {
  lps::stream::ParallelPipeline::Options options;
  options.shards = static_cast<int>(replicas.size());
  options.threads = threads;
  lps::stream::ParallelPipeline pipeline(options);
  pipeline.Add("sink", replicas);
  lps::io::PipelineSink sink(&pipeline, wm, interval);
  auto stats = feeder->Feed(std::ref(sink));
  if (!ReportFeed(stats)) return false;
  sink.Finish();
  return true;
}

/// Drives the trace into `sink`, either directly or through the parallel
/// ingestion runtime over `replicas` (replica 0 == sink), merging
/// afterwards. threads == 0 applies batches inline (deterministic
/// single-threaded mode); the final state is bit-identical either way.
void Ingest(const lps::stream::Trace& trace,
            const std::vector<lps::LinearSketch*>& replicas, int threads) {
  if (replicas.size() == 1 && threads == 0) {
    lps::stream::StreamDriver driver;
    driver.AddSink("sink", [&replicas](const lps::stream::Update* u,
                                       size_t c) {
      replicas[0]->UpdateBatch(u, c);
    });
    driver.Drive(trace.updates);
    return;
  }
  lps::stream::ParallelPipeline::Options options;
  options.shards = static_cast<int>(replicas.size());
  options.threads = threads;
  lps::stream::ParallelPipeline pipeline(options);
  pipeline.Add("sink", replicas);
  pipeline.Drive(trace.updates);
  pipeline.MergeShards();
}

int CmdGen(int argc, char** argv) {
  const bool binary = TakeBoolFlag(&argc, argv, "--binary");
  if (argc != 6) return Usage();
  const std::string kind = argv[2];
  const uint64_t n = std::strtoull(argv[3], nullptr, 10);
  const uint64_t arg = std::strtoull(argv[4], nullptr, 10);
  const uint64_t seed = std::strtoull(argv[5], nullptr, 10);
  if (n == 0) return Usage();
  lps::stream::UpdateStream updates;
  if (kind == "turnstile") {
    updates = lps::stream::UniformTurnstile(n, arg, 100, seed);
  } else if (kind == "sparse") {
    updates = lps::stream::SparseVector(n, arg, 1000, seed);
  } else if (kind == "zipf") {
    updates = lps::stream::ZipfianVector(n, 1.0, static_cast<int64_t>(arg),
                                         true, seed);
  } else if (kind == "duplicates") {
    if (!binary) {
      lps::stream::WriteLetterTrace(
          std::cout, n, lps::stream::DuplicateStream(n, arg, seed));
      return 0;
    }
    // Binary traces carry letters as the equivalent (letter, +1) updates
    // the decoder would produce for "l <letter>" lines.
    for (const uint64_t letter : lps::stream::DuplicateStream(n, arg, seed)) {
      updates.push_back({letter, 1});
    }
  } else {
    return Usage();
  }
  if (binary) {
    std::string out;
    lps::io::WriteBinaryTrace(&out, n, updates);
    std::fwrite(out.data(), 1, out.size(), stdout);
  } else {
    lps::stream::WriteTrace(std::cout, n, updates);
  }
  return 0;
}

// ------------------------------------------------------------ structures --
// Builders shared by the direct commands and `save`: construct the
// structure for a command spec, ingest (optionally sharded, optionally
// async via --from), and hand the merged structure to the caller.

/// Windowed ingestion: replica 0 is wrapped in a WindowManager. Solo
/// ingestion seals automatically every `checkpoint` updates; sharded
/// ingestion runs the parallel runtime in epochs of `checkpoint` updates
/// (Drive, MergeShards, SealEpoch — replica 0 holds the full prefix
/// exactly at those boundaries); async ingestion seals the same epochs
/// through PipelineSink. Returns the materialized trailing window and
/// prints the chosen range (the start rounds down to a checkpoint
/// boundary).
std::unique_ptr<lps::LinearSketch> IngestWindowed(
    StreamInput& in, const std::vector<lps::LinearSketch*>& replicas,
    int threads, const WindowSpec& spec) {
  lps::stream::WindowManager::Options options;
  options.checkpoint_interval = spec.checkpoint;
  lps::stream::WindowManager wm(replicas[0], options);
  if (in.feeder != nullptr) {
    if (!FeedSharded(in.feeder.get(), replicas, threads, &wm,
                     spec.checkpoint)) {
      return nullptr;
    }
  } else if (replicas.size() == 1 && threads == 0) {
    wm.PushBatch(in.trace.updates.data(), in.trace.updates.size());
  } else {
    const auto& t = in.trace;
    lps::stream::ParallelPipeline::Options popts;
    popts.shards = static_cast<int>(replicas.size());
    popts.threads = threads;
    lps::stream::ParallelPipeline pipeline(popts);
    pipeline.Add("sink", replicas);
    size_t done = 0;
    while (done < t.updates.size()) {
      const size_t take =
          std::min<size_t>(spec.checkpoint, t.updates.size() - done);
      pipeline.Drive(t.updates.data() + done, take);
      pipeline.MergeShards();
      wm.SealEpoch(take);
      done += take;
    }
  }
  auto window = wm.WindowSketch(spec.window);
  std::printf("window [%llu, %llu) of %llu updates (asked %llu, checkpoint "
              "every %llu)\n",
              static_cast<unsigned long long>(window.start),
              static_cast<unsigned long long>(window.start + window.length),
              static_cast<unsigned long long>(wm.updates_seen()),
              static_cast<unsigned long long>(spec.window),
              static_cast<unsigned long long>(spec.checkpoint));
  return std::move(window.sketch);
}

/// Builds `shards` identical replicas of `spec` through the MakeSketch
/// registry (the same one CREATE requests and DeserializeAnySketch use),
/// ingests the input through the parallel runtime (sharded when
/// shards > 1, threaded when threads > 0, streamed when the input is a
/// feeder), and returns the merged structure — windowed to the last
/// window.window updates when requested. Returns nullptr on a feed error.
std::unique_ptr<lps::LinearSketch> BuildSharded(StreamInput& in, int shards,
                                                int threads,
                                                const WindowSpec& window,
                                                const lps::SketchSpec& spec) {
  std::vector<std::unique_ptr<lps::LinearSketch>> replicas;
  for (int s = 0; s < shards; ++s) replicas.push_back(lps::MakeSketch(spec));
  std::vector<lps::LinearSketch*> raw;
  for (auto& r : replicas) raw.push_back(r.get());
  if (window.window > 0) return IngestWindowed(in, raw, threads, window);
  if (in.feeder != nullptr) {
    if (!FeedSharded(in.feeder.get(), raw, threads, nullptr, 0)) {
      return nullptr;
    }
  } else {
    Ingest(in.trace, raw, threads);
  }
  return std::move(replicas[0]);
}

std::unique_ptr<lps::LinearSketch> BuildSampler(StreamInput& in,
                                                const char* p_arg, double eps,
                                                double delta, uint64_t seed,
                                                int shards, int threads,
                                                const WindowSpec& window) {
  lps::SketchSpec spec;
  spec.n = in.n;
  spec.delta = delta;
  spec.seed = seed;
  if (std::strcmp(p_arg, "L0") == 0) {
    spec.kind = lps::SketchKind::kL0Sampler;
  } else {
    spec.kind = lps::SketchKind::kLpSampler;
    spec.p = std::strtod(p_arg, nullptr);
    spec.eps = eps;
  }
  return BuildSharded(in, shards, threads, window, spec);
}

std::unique_ptr<lps::LinearSketch> BuildHeavy(StreamInput& in, double p,
                                              double phi, uint64_t seed,
                                              int shards, int threads,
                                              const WindowSpec& window) {
  lps::SketchSpec spec;
  spec.kind = lps::SketchKind::kCsHeavyHitters;
  spec.n = in.n;
  spec.p = p;
  spec.phi = phi;
  spec.seed = seed;
  return BuildSharded(in, shards, threads, window, spec);
}

std::unique_ptr<lps::LinearSketch> BuildNorm(StreamInput& in, double p,
                                             uint64_t seed, int shards,
                                             int threads,
                                             const WindowSpec& window) {
  lps::SketchSpec spec;
  spec.kind = lps::SketchKind::kLpNormEstimator;
  spec.n = in.n;
  spec.p = p;
  spec.seed = seed;  // rows == 0 resolves to DefaultRows(n) in MakeSketch
  return BuildSharded(in, shards, threads, window, spec);
}

std::unique_ptr<lps::LinearSketch> BuildDuplicates(StreamInput& in,
                                                   double delta,
                                                   uint64_t seed) {
  lps::SketchSpec spec;
  spec.kind = lps::SketchKind::kDuplicateFinder;
  spec.n = in.n;
  spec.delta = delta;
  spec.seed = seed;
  auto finder = lps::MakeSketch(spec);
  bool letters_only = true;
  if (in.feeder != nullptr) {
    auto stats =
        in.feeder->Feed([&](const lps::stream::Update* u, size_t c) {
          for (size_t t = 0; t < c; ++t) {
            if (u[t].delta != 1) {
              letters_only = false;
              continue;
            }
            finder->Update(u[t].index, +1);
          }
        });
    if (!ReportFeed(stats)) return nullptr;
  } else {
    for (const auto& u : in.trace.updates) {
      if (u.delta != 1) {
        letters_only = false;
        break;
      }
      // A letter is a (letter, +1) update on top of the finder's built-in
      // initialization — ProcessItem and the LinearSketch entry point are
      // the same operation.
      finder->Update(u.index, +1);
    }
  }
  if (!letters_only) {
    std::fprintf(stderr, "duplicates mode expects a letter trace\n");
    return nullptr;
  }
  return finder;
}

/// Queries through the unified dispatch and prints the result — the text
/// is byte-identical to the historical per-kind printf chain (the CI
/// smoke diffs it). Unsupported kinds diagnose on stderr. Returns the
/// process exit code.
int ReportQuery(const lps::LinearSketch& sketch) {
  const lps::QueryResult result = lps::Query(sketch);
  const std::string text = result.ToText();
  if (result.type == lps::QueryResult::Type::kUnsupported) {
    std::fputs(text.c_str(), stderr);
  } else {
    std::fputs(text.c_str(), stdout);
  }
  return result.ExitCode();
}

int SaveSketch(const lps::LinearSketch& sketch, const char* path) {
  lps::BitWriter writer;
  sketch.Serialize(&writer);
  auto status = lps::WriteBitsToFile(writer, path);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved %s state to %s (%zu bits)\n",
              lps::SketchKindName(sketch.kind()), path, writer.bit_count());
  return 0;
}

std::unique_ptr<lps::LinearSketch> LoadSketch(const char* path) {
  // Streamed container read (src/io/bits_io.h): the reader validates the
  // header as it goes and never sizes an allocation from the file's
  // claimed length — a corrupt or hostile file fails cleanly instead of
  // slurping first and asking questions later.
  auto reader = lps::io::ReadBitsStreamed(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 reader.status().ToString().c_str());
    return nullptr;
  }
  // Library-side dispatch on the kind tag: every SketchKind loads.
  auto sketch = lps::DeserializeAnySketch(&reader.value());
  if (sketch == nullptr) {
    std::fprintf(stderr, "%s holds an unknown sketch kind\n", path);
  }
  return sketch;
}

// ------------------------------------------------------------- commands --

int CmdSample(int argc, char** argv) {
  int shards = 0, threads = 0;
  WindowSpec spec;
  std::string from;
  if (!TakeTopologyFlags(&argc, argv, &shards, &threads)) return Usage();
  if (!TakeWindowFlags(&argc, argv, &spec)) return Usage();
  if (!TakeFromFlag(&argc, argv, &from)) return Usage();
  if (argc != 6) return Usage();
  auto in = OpenInput(from);
  if (in == nullptr) return 1;
  const double eps = std::strtod(argv[3], nullptr);
  const double delta = std::strtod(argv[4], nullptr);
  const uint64_t seed = std::strtoull(argv[5], nullptr, 10);
  auto sampler =
      BuildSampler(*in, argv[2], eps, delta, seed, shards, threads, spec);
  if (sampler == nullptr) return 1;
  return ReportQuery(*sampler);
}

int CmdDuplicates(int argc, char** argv) {
  std::string from;
  if (!TakeFromFlag(&argc, argv, &from)) return Usage();
  if (argc != 4) return Usage();
  auto in = OpenInput(from);
  if (in == nullptr) return 1;
  const double delta = std::strtod(argv[2], nullptr);
  const uint64_t seed = std::strtoull(argv[3], nullptr, 10);
  auto finder = BuildDuplicates(*in, delta, seed);
  if (finder == nullptr) return 2;
  return ReportQuery(*finder);
}

int CmdHeavy(int argc, char** argv) {
  int shards = 0, threads = 0;
  WindowSpec spec;
  std::string from;
  if (!TakeTopologyFlags(&argc, argv, &shards, &threads)) return Usage();
  if (!TakeWindowFlags(&argc, argv, &spec)) return Usage();
  if (!TakeFromFlag(&argc, argv, &from)) return Usage();
  if (argc != 5) return Usage();
  auto in = OpenInput(from);
  if (in == nullptr) return 1;
  auto hh = BuildHeavy(*in, std::strtod(argv[2], nullptr),
                       std::strtod(argv[3], nullptr),
                       std::strtoull(argv[4], nullptr, 10), shards, threads,
                       spec);
  if (hh == nullptr) return 1;
  return ReportQuery(*hh);
}

int CmdNorm(int argc, char** argv) {
  int shards = 0, threads = 0;
  WindowSpec spec;
  std::string from;
  if (!TakeTopologyFlags(&argc, argv, &shards, &threads)) return Usage();
  if (!TakeWindowFlags(&argc, argv, &spec)) return Usage();
  if (!TakeFromFlag(&argc, argv, &from)) return Usage();
  if (argc != 4) return Usage();
  auto in = OpenInput(from);
  if (in == nullptr) return 1;
  auto est = BuildNorm(*in, std::strtod(argv[2], nullptr),
                       std::strtoull(argv[3], nullptr, 10), shards, threads,
                       spec);
  if (est == nullptr) return 1;
  return ReportQuery(*est);
}

int CmdStats(int argc, char** argv) {
  std::string from;
  if (!TakeFromFlag(&argc, argv, &from)) return Usage();
  if (argc != 2) return Usage();
  auto in = OpenInput(from);
  if (in == nullptr) return 1;
  lps::stream::ExactVector x(in->n);
  size_t count = 0;
  if (in->feeder != nullptr) {
    auto stats = in->feeder->Feed([&](const lps::stream::Update* u,
                                      size_t c) {
      for (size_t t = 0; t < c; ++t) x.Apply(u[t]);
      count += c;
    });
    if (!ReportFeed(stats)) return 1;
  } else {
    x.Apply(in->trace.updates);
    count = in->trace.updates.size();
  }
  std::printf("n %llu  updates %zu  L0 %llu  ||x||_1 %.6g  ||x||_2 %.6g  "
              "total %lld\n",
              static_cast<unsigned long long>(in->n), count,
              static_cast<unsigned long long>(x.L0()), x.NormP(1.0),
              x.NormP(2.0), static_cast<long long>(x.Total()));
  return 0;
}

int CmdSave(int argc, char** argv) {
  std::string from;
  if (!TakeFromFlag(&argc, argv, &from)) return Usage();
  if (argc < 4) return Usage();
  const std::string what = argv[2];
  const char* path = argv[argc - 1];
  auto in = OpenInput(from);
  if (in == nullptr) return 1;
  std::unique_ptr<lps::LinearSketch> sketch;
  const WindowSpec whole;  // save persists the whole-stream sketch
  if (what == "sample" && argc == 8) {
    sketch = BuildSampler(*in, argv[3], std::strtod(argv[4], nullptr),
                          std::strtod(argv[5], nullptr),
                          std::strtoull(argv[6], nullptr, 10), 1, 0, whole);
  } else if (what == "heavy" && argc == 7) {
    sketch = BuildHeavy(*in, std::strtod(argv[3], nullptr),
                        std::strtod(argv[4], nullptr),
                        std::strtoull(argv[5], nullptr, 10), 1, 0, whole);
  } else if (what == "norm" && argc == 6) {
    sketch = BuildNorm(*in, std::strtod(argv[3], nullptr),
                       std::strtoull(argv[4], nullptr, 10), 1, 0, whole);
  } else if (what == "duplicates" && argc == 6) {
    sketch = BuildDuplicates(*in, std::strtod(argv[3], nullptr),
                             std::strtoull(argv[4], nullptr, 10));
  } else {
    return Usage();
  }
  if (sketch == nullptr) return 2;
  return SaveSketch(*sketch, path);
}

int CmdLoad(int argc, char** argv) {
  if (argc != 3) return Usage();
  auto sketch = LoadSketch(argv[2]);
  if (sketch == nullptr) return 1;
  std::printf("loaded %s state from %s\n", lps::SketchKindName(sketch->kind()),
              argv[2]);
  return ReportQuery(*sketch);
}

int CmdMerge(int argc, char** argv) {
  if (argc < 5) return Usage();
  const char* out = argv[2];
  auto merged = LoadSketch(argv[3]);
  if (merged == nullptr) return 1;
  for (int a = 4; a < argc; ++a) {
    auto next = LoadSketch(argv[a]);
    if (next == nullptr) return 1;
    if (next->kind() != merged->kind()) {
      std::fprintf(stderr, "cannot merge %s into %s\n",
                   lps::SketchKindName(next->kind()),
                   lps::SketchKindName(merged->kind()));
      return 2;
    }
    merged->Merge(*next);  // CHECK-fails on parameter/seed mismatch
  }
  std::printf("merged %d shards\n", argc - 3);
  return SaveSketch(*merged, out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "gen") return CmdGen(argc, argv);
  if (command == "sample") return CmdSample(argc, argv);
  if (command == "duplicates") return CmdDuplicates(argc, argv);
  if (command == "heavy") return CmdHeavy(argc, argv);
  if (command == "norm") return CmdNorm(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "save") return CmdSave(argc, argv);
  if (command == "load") return CmdLoad(argc, argv);
  if (command == "merge") return CmdMerge(argc, argv);
  if (command == "version") return CmdVersion();
  return Usage();
}
