// lps_cli — command-line driver for the library: generate workload traces,
// replay them through any sampler or sketch, and print results. The tool a
// downstream user reaches for before writing code.
//
// Usage:
//   lps_cli gen <kind> <n> <arg> <seed>        write a trace to stdout
//       kinds: turnstile <#updates> | sparse <#nonzero> |
//              zipf <scale> | duplicates <extras>
//   lps_cli sample <p|L0> <eps> <delta> <seed> < trace    draw one sample
//   lps_cli duplicates <delta> <seed>          < trace    find a duplicate
//   lps_cli heavy <p> <phi> <seed>             < trace    heavy hitter set
//   lps_cli norm <p> <seed>                    < trace    2-approx of ||x||_p
//   lps_cli stats                              < trace    exact summary
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/duplicates/duplicates.h"
#include "src/heavy/heavy_hitters.h"
#include "src/norm/lp_norm.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"
#include "src/stream/stream_driver.h"
#include "src/stream/trace.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  lps_cli gen {turnstile|sparse|zipf|duplicates} <n> <arg> "
               "<seed>\n"
               "  lps_cli sample {<p>|L0} <eps> <delta> <seed>  < trace\n"
               "  lps_cli duplicates <delta> <seed>             < trace\n"
               "  lps_cli heavy <p> <phi> <seed>                < trace\n"
               "  lps_cli norm <p> <seed>                       < trace\n"
               "  lps_cli stats                                 < trace\n");
  return 2;
}

lps::Result<lps::stream::Trace> LoadTrace() {
  auto trace = lps::stream::ReadTrace(std::cin);
  if (!trace.ok()) {
    std::fprintf(stderr, "bad trace: %s\n",
                 trace.status().ToString().c_str());
  }
  return trace;
}

int CmdGen(int argc, char** argv) {
  if (argc != 6) return Usage();
  const std::string kind = argv[2];
  const uint64_t n = std::strtoull(argv[3], nullptr, 10);
  const uint64_t arg = std::strtoull(argv[4], nullptr, 10);
  const uint64_t seed = std::strtoull(argv[5], nullptr, 10);
  if (n == 0) return Usage();
  if (kind == "turnstile") {
    lps::stream::WriteTrace(std::cout, n,
                            lps::stream::UniformTurnstile(n, arg, 100, seed));
  } else if (kind == "sparse") {
    lps::stream::WriteTrace(std::cout, n,
                            lps::stream::SparseVector(n, arg, 1000, seed));
  } else if (kind == "zipf") {
    lps::stream::WriteTrace(
        std::cout, n,
        lps::stream::ZipfianVector(n, 1.0, static_cast<int64_t>(arg), true,
                                   seed));
  } else if (kind == "duplicates") {
    lps::stream::WriteLetterTrace(std::cout, n,
                                  lps::stream::DuplicateStream(n, arg, seed));
  } else {
    return Usage();
  }
  return 0;
}

int CmdSample(int argc, char** argv) {
  if (argc != 6) return Usage();
  auto trace = LoadTrace();
  if (!trace.ok()) return 1;
  const double eps = std::strtod(argv[3], nullptr);
  const double delta = std::strtod(argv[4], nullptr);
  const uint64_t seed = std::strtoull(argv[5], nullptr, 10);
  if (std::strcmp(argv[2], "L0") == 0) {
    lps::core::L0Sampler sampler({trace->n, delta, 0, seed, false});
    lps::stream::StreamDriver driver;
    driver.Add("l0_sampler", &sampler).Drive(trace->updates);
    auto res = sampler.Sample();
    if (!res.ok()) {
      std::printf("FAIL %s\n", res.status().ToString().c_str());
      return 1;
    }
    std::printf("index %llu value %.0f\n",
                static_cast<unsigned long long>(res.value().index),
                res.value().estimate);
    return 0;
  }
  lps::core::LpSamplerParams params;
  params.n = trace->n;
  params.p = std::strtod(argv[2], nullptr);
  params.eps = eps;
  params.delta = delta;
  params.seed = seed;
  lps::core::LpSampler sampler(params);
  lps::stream::StreamDriver driver;
  driver.Add("lp_sampler", &sampler).Drive(trace->updates);
  auto res = sampler.Sample();
  if (!res.ok()) {
    std::printf("FAIL %s\n", res.status().ToString().c_str());
    return 1;
  }
  std::printf("index %llu estimate %.3f\n",
              static_cast<unsigned long long>(res.value().index),
              res.value().estimate);
  return 0;
}

int CmdDuplicates(int argc, char** argv) {
  if (argc != 4) return Usage();
  auto trace = LoadTrace();
  if (!trace.ok()) return 1;
  const double delta = std::strtod(argv[2], nullptr);
  const uint64_t seed = std::strtoull(argv[3], nullptr, 10);
  lps::duplicates::DuplicateFinder finder({trace->n, delta, 0, seed});
  // The trace's letter records arrive as (letter, +1) updates; the finder
  // already seeded the -1 initialization internally.
  for (const auto& u : trace->updates) {
    if (u.delta != 1) {
      std::fprintf(stderr, "duplicates mode expects a letter trace\n");
      return 2;
    }
    finder.ProcessItem(u.index);
  }
  auto res = finder.Find();
  if (!res.ok()) {
    std::printf("FAIL %s\n", res.status().ToString().c_str());
    return 1;
  }
  std::printf("duplicate %llu\n",
              static_cast<unsigned long long>(res.value()));
  return 0;
}

int CmdHeavy(int argc, char** argv) {
  if (argc != 5) return Usage();
  auto trace = LoadTrace();
  if (!trace.ok()) return 1;
  lps::heavy::CsHeavyHitters::Params params;
  params.n = trace->n;
  params.p = std::strtod(argv[2], nullptr);
  params.phi = std::strtod(argv[3], nullptr);
  params.seed = std::strtoull(argv[4], nullptr, 10);
  lps::heavy::CsHeavyHitters hh(params);
  lps::stream::StreamDriver driver;
  driver.Add("heavy_hitters", &hh).Drive(trace->updates);
  const auto set = hh.Query();
  std::printf("%zu heavy hitters:", set.size());
  for (uint64_t i : set) std::printf(" %llu", static_cast<unsigned long long>(i));
  std::printf("\n");
  return 0;
}

int CmdNorm(int argc, char** argv) {
  if (argc != 4) return Usage();
  auto trace = LoadTrace();
  if (!trace.ok()) return 1;
  const double p = std::strtod(argv[2], nullptr);
  const uint64_t seed = std::strtoull(argv[3], nullptr, 10);
  lps::norm::LpNormEstimator est(
      p, lps::norm::LpNormEstimator::DefaultRows(trace->n), seed);
  lps::stream::StreamDriver driver;
  driver.Add("lp_norm", &est).Drive(trace->updates);
  std::printf("r %.6g   (||x||_p <= r <= 2 ||x||_p w.h.p.)\n",
              est.Estimate2Approx());
  return 0;
}

int CmdStats(int argc, char**) {
  if (argc != 2) return Usage();
  auto trace = LoadTrace();
  if (!trace.ok()) return 1;
  lps::stream::ExactVector x(trace->n);
  x.Apply(trace->updates);
  std::printf("n %llu  updates %zu  L0 %llu  ||x||_1 %.6g  ||x||_2 %.6g  "
              "total %lld\n",
              static_cast<unsigned long long>(trace->n),
              trace->updates.size(),
              static_cast<unsigned long long>(x.L0()), x.NormP(1.0),
              x.NormP(2.0), static_cast<long long>(x.Total()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "gen") return CmdGen(argc, argv);
  if (command == "sample") return CmdSample(argc, argv);
  if (command == "duplicates") return CmdDuplicates(argc, argv);
  if (command == "heavy") return CmdHeavy(argc, argv);
  if (command == "norm") return CmdNorm(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  return Usage();
}
