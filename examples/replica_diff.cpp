// Replica reconciliation: find a key where two replicas disagree, in one
// round and O(log^2 n) bits (Proposition 5's universal relation protocol).
//
// Two databases each hold a characteristic bit-vector over a key space of
// a million slots. They diverged slightly (a lost write, a stale delete).
// Shipping either vector costs n bits; the one-round UR protocol ships a
// serialized L0-sampler sketch instead — the receiving side subtracts its
// own vector (the sketch is linear) and samples a differing key directly.
// The two-round variant gets to O(log n) bits.
//
// Build & run:  ./build/examples/replica_diff
#include <cstdio>

#include "src/comm/universal_relation.h"

int main() {
  const uint64_t n = 1 << 20;  // one million key slots

  // Build the instance: replicas agree except on 3 keys.
  lps::comm::URInstance replicas = lps::comm::MakeURInstance(
      n, /*num_diffs=*/3, /*density=*/0.25, /*seed=*/2718);
  std::printf("key space: %llu slots; replicas differ on 3 keys\n\n",
              static_cast<unsigned long long>(n));

  // One-round protocol: primary -> secondary.
  const auto one = lps::comm::RunOneRoundUR(replicas, /*delta=*/0.02,
                                            /*shared_seed=*/31337);
  if (one.ok) {
    std::printf("one-round : divergent key %llu (%s), message %zu bits\n",
                static_cast<unsigned long long>(one.index),
                one.correct ? "verified" : "WRONG", one.stats.TotalBits());
  } else {
    std::printf("one-round : protocol failed this run\n");
  }

  // Two-round protocol: fingerprint pass, then targeted sparse recovery.
  const auto two = lps::comm::RunTwoRoundUR(replicas, 0.02, 1618);
  if (two.ok) {
    std::printf("two-round : divergent key %llu (%s), messages %zu + %zu bits\n",
                static_cast<unsigned long long>(two.index),
                two.correct ? "verified" : "WRONG",
                two.stats.message_bits[0], two.stats.message_bits[1]);
  } else {
    std::printf("two-round : protocol failed this run\n");
  }

  // The naive alternative.
  const auto trivial = lps::comm::RunTrivialUR(replicas);
  std::printf("naive     : ship the whole vector, %zu bits\n",
              trivial.stats.TotalBits());

  if (one.ok && two.ok) {
    std::printf("\nsavings   : %.0fx (one-round), %.0fx (two-round)\n",
                static_cast<double>(trivial.stats.TotalBits()) /
                    one.stats.TotalBits(),
                static_cast<double>(trivial.stats.TotalBits()) /
                    two.stats.TotalBits());
  }
  std::printf("\n(Theorem 6: the one-round message size is optimal up to\n"
              "constants — Omega(log^2 n) bits are required.)\n");
  return 0;
}
