// Network heavy hitters over a flow-delta stream (Section 4.4).
//
// A router exports per-flow byte deltas; flows can shrink (retransmission
// adjustments, accounting corrections), so the stream is strict turnstile:
// arbitrary +/- updates, non-negative final totals. The operator wants
// every flow carrying >= phi of the traffic and no flow below phi/2 — the
// paper's valid heavy hitter set, for which Theorem 9 proves
// Omega(phi^-p log^2 n) bits are necessary and count-sketch/count-min are
// optimal.
//
// Build & run:  ./build/examples/network_heavy_hitters
#include <cstdio>
#include <vector>

#include "src/heavy/heavy_hitters.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"
#include "src/stream/stream_driver.h"
#include "src/util/bits.h"
#include "src/util/random.h"

int main() {
  const int log_n = 16;
  const uint64_t num_flows = 1ULL << log_n;  // flow-id space
  const double phi = 0.05;

  // Synthesize traffic: 5 elephant flows + 20000 mice, then corrections.
  lps::stream::UpdateStream traffic =
      lps::stream::PlantedHeavyHitters(num_flows, 5, 40000, 20000, false, 3);
  {
    lps::Rng rng(9);
    // Corrections: shave bytes off random mice (kept non-negative).
    lps::stream::UpdateStream corrected;
    for (const auto& u : traffic) {
      corrected.push_back(u);
      if (u.delta == 1 && rng.NextDouble() < 0.2) {
        corrected.push_back({u.index, 0});  // no-op marker, keeps it simple
      }
    }
    traffic.swap(corrected);
  }

  lps::stream::ExactVector exact(num_flows);

  lps::heavy::CmHeavyHitters cm({num_flows, phi, 0, 1001, false});
  lps::heavy::DyadicHeavyHitters dyadic(log_n, phi, 1002);

  // Updates arrive one flow record at a time; the driver buffers them and
  // flushes full batches through both sketches' fast paths.
  lps::stream::StreamDriver driver;
  driver.Add("count_min", &cm).Add("dyadic", &dyadic);
  for (const auto& u : traffic) {
    if (u.delta == 0) continue;
    exact.Apply(u);
    driver.Push(u);
  }
  driver.Flush();

  const auto truth = exact.HeavyHitters(1.0, phi);
  std::printf("ground truth: %zu flows above %.0f%% of %0.f total bytes\n",
              truth.size(), 100 * phi, exact.NormP(1.0));

  const auto flat = cm.Query();
  std::printf("\ncount-min (flat scan): %zu flows flagged:", flat.size());
  for (uint64_t f : flat) std::printf(" %llu", static_cast<unsigned long long>(f));
  const auto v1 = lps::heavy::ValidateHeavySet(exact, 1.0, phi, flat);
  std::printf("\n  valid set: %s (missing %d, spurious %d)\n",
              v1.valid ? "YES" : "NO", v1.missing_heavy, v1.included_light);
  std::printf("  space: %zu bits\n", cm.SpaceBits(2 * log_n));

  const auto fast = dyadic.Query();
  const auto v2 = lps::heavy::ValidateHeavySet(exact, 1.0, phi, fast);
  std::printf("\ndyadic count-min (tree descent, O(#heavy log n) query):\n"
              "  %zu flows flagged, valid set: %s\n",
              fast.size(), v2.valid ? "YES" : "NO");
  std::printf("  space: %zu bits (log n levels: space for query speed)\n",
              dyadic.SpaceBits(2 * log_n));

  std::printf("\nlower-bound context (Thm 9): any algorithm needs "
              "Omega(phi^-1 log^2 n) ~ %.0f bits here.\n",
              (1 / phi) * log_n * log_n);
  return 0;
}
