// Frequency moments beyond p = 2, via Lp sampling as a black box.
//
// The paper's introduction notes that Lp samplers yield alternative
// algorithms for classical streaming problems, frequency moment estimation
// among them ([23]). For p > 2 no small linear sketch estimates
// F_p = sum_i |x_i|^p directly, but sample-and-reweight does: draw
// i ~ Lq distribution (q close to 2), estimate F_p as
// ||x||_q^q * |x_i|^{p-q}, and average. This example estimates F_3 of a
// skewed turnstile stream and compares against the exact value.
//
// Build & run:  ./build/examples/moment_estimation
#include <cstdio>

#include "src/apps/moment_estimation.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"
#include "src/stream/stream_driver.h"

int main() {
  const uint64_t n = 512;
  const double p = 3.0;

  // A skewed vector with signs: F_3 is dominated by the few heavy items.
  const auto stream = lps::stream::ZipfianVector(n, 0.9, 100, true, 11);
  lps::stream::ExactVector exact(n);
  exact.Apply(stream);
  const double truth = exact.NormPToP(p);

  std::printf("estimating F_%.0f of a %zu-dimensional signed Zipfian vector\n",
              p, static_cast<size_t>(n));
  std::printf("exact F_3 = %.3e\n\n", truth);

  for (int samples : {16, 64, 256}) {
    lps::apps::MomentEstimator est({n, p, samples, 1.9, 77});
    lps::stream::StreamDriver driver;
    driver.Add("moments", &est).Drive(stream);
    auto r = est.Estimate();
    if (r.ok()) {
      std::printf("samples=%3d : F_3 ~ %.3e   (ratio %.2f, %zu bits)\n",
                  samples, r.value(), r.value() / truth,
                  est.SpaceBits(2 * 9));
    } else {
      std::printf("samples=%3d : estimation failed\n", samples);
    }
  }
  std::printf("\nexpected: ratio -> 1 as samples grow (the estimator is\n"
              "unbiased; averaging kills the variance).\n");
  return 0;
}
