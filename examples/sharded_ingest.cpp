// Sharded ingestion and mergeable summaries: the deployment mode that
// linearity buys (Section 4's "send the memory contents", productionized).
//
// A click stream over a million-slot key space is partitioned across 4
// ingest shards, each owned by a worker thread of the parallel ingestion
// runtime (ParallelPipeline). Each shard holds replicas of a
// heavy-hitters sketch and an L1 sampler (same params, same seeds) and
// consumes only its own sub-stream through the batched fast path, fed by
// a bounded ring. At query time the replicas merge coordinate-wise into
// one structure whose answers match single-stream ingestion — the final
// state is bit-identical for ANY worker count, including the inline
// threads=0 ShardedDriver mode — then the merged state round-trips
// through a file, the way a shard would ship its summary to an
// aggregator.
//
// Build & run:  ./build/sharded_ingest
#include <cstdio>
#include <vector>

#include "src/core/lp_sampler.h"
#include "src/heavy/heavy_hitters.h"
#include "src/stream/generators.h"
#include "src/stream/parallel_pipeline.h"
#include "src/util/serialize.h"

int main() {
  const uint64_t n = 1 << 20;
  const int kShards = 4;
  const int kThreads = 4;  // one worker per shard

  // A workload with 5 planted heavy clickers over background noise.
  const auto stream =
      lps::stream::PlantedHeavyHitters(n, 5, 50000, 20000, false, 99);

  // One replica set per structure; replicas must share params and seed.
  lps::heavy::CsHeavyHitters::Params hh_params;
  hh_params.n = n;
  hh_params.p = 1.0;
  hh_params.phi = 0.05;
  hh_params.strict_turnstile = true;
  hh_params.seed = 7;
  std::vector<lps::heavy::CsHeavyHitters> hh_replicas;
  lps::core::LpSamplerParams l1_params;
  l1_params.n = n;
  l1_params.p = 1.0;
  l1_params.eps = 0.25;
  l1_params.repetitions = 12;
  l1_params.seed = 8;
  std::vector<lps::core::LpSampler> l1_replicas;
  for (int s = 0; s < kShards; ++s) {
    hh_replicas.emplace_back(hh_params);
    l1_replicas.emplace_back(l1_params);
  }

  // Hash-partitioned parallel ingestion: every coordinate sticks to one
  // shard, every shard to one worker thread.
  lps::stream::ParallelPipeline::Options options;
  options.shards = kShards;
  options.threads = kThreads;
  lps::stream::ParallelPipeline driver(options);
  std::vector<lps::LinearSketch*> hh_ptrs, l1_ptrs;
  for (int s = 0; s < kShards; ++s) {
    hh_ptrs.push_back(&hh_replicas[static_cast<size_t>(s)]);
    l1_ptrs.push_back(&l1_replicas[static_cast<size_t>(s)]);
  }
  driver.Add("heavy_hitters", hh_ptrs).Add("l1_sampler", l1_ptrs);
  driver.Drive(stream);
  std::printf("ingested %zu updates across %d shards on %d workers\n",
              driver.updates_driven(), driver.shards(), driver.threads());

  // Collapse: replicas 1..k-1 merge into replica 0 (and reset for the
  // next epoch). By linearity the merged state equals single-stream
  // ingestion.
  driver.MergeShards();

  const auto heavy = hh_replicas[0].Query();
  std::printf("merged heavy-hitter set (%zu):", heavy.size());
  for (uint64_t i : heavy) {
    std::printf(" %llu", static_cast<unsigned long long>(i));
  }
  std::printf("\n");

  auto sample = l1_replicas[0].Sample();
  if (sample.ok()) {
    std::printf("merged L1 sample: index %llu, estimate %.1f\n",
                static_cast<unsigned long long>(sample.value().index),
                sample.value().estimate);
  } else {
    std::printf("merged L1 sample: FAIL this run\n");
  }

  // Ship the merged summary: full reconstructible state (versioned header,
  // params, seeds, counters) through a file and back.
  lps::BitWriter writer;
  hh_replicas[0].Serialize(&writer);
  const char* path = "sharded_heavy.lps";
  if (lps::WriteBitsToFile(writer, path).ok()) {
    auto reader = lps::ReadBitsFromFile(path);
    lps::heavy::CsHeavyHitters::Params empty;
    empty.n = 1;
    lps::heavy::CsHeavyHitters restored(empty);
    restored.Deserialize(&reader.value());
    std::printf("state round-trip through %s: %zu bits, %zu heavy hitters "
                "after restore\n",
                path, writer.bit_count(), restored.Query().size());
    std::remove(path);
  }
  return 0;
}
