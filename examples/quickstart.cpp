// Quickstart: Lp-sample from a turnstile stream (insertions AND deletions).
//
// A classical reservoir sampler breaks the moment a deletion arrives; the
// paper's Lp sampler handles fully general update streams in O(log^2 n)
// space. This example builds a small stream, draws an L1 sample and an L0
// sample, and prints what the samplers saw versus the exact vector.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/stream/exact_vector.h"
#include "src/stream/stream_driver.h"
#include "src/stream/update.h"

int main() {
  const uint64_t n = 1000;

  // A stream of updates (i, u): note the deletions — after the stream,
  // item 42 has weight 60, item 7 has weight 25, item 999 has weight 15,
  // and item 500 was fully deleted.
  const lps::stream::UpdateStream stream = {
      {42, 40},  {7, 25},  {500, 30}, {42, 20},
      {999, 15}, {500, -30},
  };

  // Ground truth, for the printout only — the samplers never see it.
  lps::stream::ExactVector exact(n);
  exact.Apply(stream);

  // --- L1 sampler (Figure 1 + Theorem 1) ---
  lps::core::LpSamplerParams params;
  params.n = n;
  params.p = 1.0;    // sample index i with probability |x_i| / ||x||_1
  params.eps = 0.25; // relative error of the sampling distribution
  params.delta = 0.05;  // failure probability
  params.seed = 2024;
  lps::core::LpSampler l1(params);

  // --- L0 sampler (Theorem 2): uniform over the surviving support ---
  lps::core::L0Sampler l0({n, /*delta=*/0.05, /*s=*/0, /*seed=*/7, false});

  // One pass of the stream through both samplers, in cache-sized batches.
  lps::stream::StreamDriver driver;
  driver.Add("l1", &l1).Add("l0", &l0).Drive(stream);

  std::printf("stream applied; exact vector: x[42]=%ld x[7]=%ld x[999]=%ld "
              "x[500]=%ld, ||x||_1=%.0f, support=%zu\n",
              static_cast<long>(exact[42]), static_cast<long>(exact[7]),
              static_cast<long>(exact[999]), static_cast<long>(exact[500]),
              exact.NormP(1.0), static_cast<size_t>(exact.L0()));

  auto s1 = l1.Sample();
  if (s1.ok()) {
    std::printf("L1 sample : index %llu (estimate %.1f)  -- P[i] ~ |x_i|/100\n",
                static_cast<unsigned long long>(s1.value().index),
                s1.value().estimate);
  } else {
    std::printf("L1 sample : FAIL (%s)\n", s1.status().ToString().c_str());
  }

  auto s0 = l0.Sample();
  if (s0.ok()) {
    std::printf("L0 sample : index %llu (exact value %.0f) -- uniform over "
                "{42, 7, 999}\n",
                static_cast<unsigned long long>(s0.value().index),
                s0.value().estimate);
  } else {
    std::printf("L0 sample : FAIL (%s)\n", s0.status().ToString().c_str());
  }

  std::printf("sampler space: L1 %zu bits, L0 %zu bits (paper counter model)\n",
              l1.SpaceBits(2 * 10), l0.SpaceBits());
  std::printf("note: the deleted item 500 can never be sampled.\n");
  return 0;
}
