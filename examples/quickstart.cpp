// Quickstart: Lp-sample from a turnstile stream (insertions AND deletions).
//
// A classical reservoir sampler breaks the moment a deletion arrives; the
// paper's Lp sampler handles fully general update streams in O(log^2 n)
// space. This example builds a small stream, draws an L1 sample and an L0
// sample, and prints what the samplers saw versus the exact vector.
//
// It is written against the library's public surface only: one include
// (src/lps.h), one construction path (SketchSpec -> MakeSketch), one
// answer type (Query -> QueryResult). The concrete classes stay available
// for typed access, but nothing here needs them.
//
// Build & run:  ./build/quickstart
#include <cstdio>

#include "src/lps.h"

int main() {
  const uint64_t n = 1000;

  // A stream of updates (i, u): note the deletions — after the stream,
  // item 42 has weight 60, item 7 has weight 25, item 999 has weight 15,
  // and item 500 was fully deleted.
  const lps::stream::UpdateStream stream = {
      {42, 40},  {7, 25},  {500, 30}, {42, 20},
      {999, 15}, {500, -30},
  };

  // Ground truth, for the printout only — the samplers never see it.
  lps::stream::ExactVector exact(n);
  exact.Apply(stream);

  // --- L1 sampler (Figure 1 + Theorem 1) ---
  lps::SketchSpec l1_spec;
  l1_spec.kind = lps::SketchKind::kLpSampler;
  l1_spec.n = n;
  l1_spec.p = 1.0;       // sample index i with probability |x_i| / ||x||_1
  l1_spec.eps = 0.25;    // relative error of the sampling distribution
  l1_spec.delta = 0.05;  // failure probability
  l1_spec.seed = 2024;
  auto l1 = lps::MakeSketch(l1_spec);

  // --- L0 sampler (Theorem 2): uniform over the surviving support ---
  lps::SketchSpec l0_spec;
  l0_spec.kind = lps::SketchKind::kL0Sampler;
  l0_spec.n = n;
  l0_spec.delta = 0.05;
  l0_spec.seed = 7;
  auto l0 = lps::MakeSketch(l0_spec);

  // One pass of the stream through both samplers, in cache-sized batches.
  lps::stream::StreamDriver driver;
  driver.Add("l1", l1.get()).Add("l0", l0.get()).Drive(stream);

  std::printf("stream applied; exact vector: x[42]=%ld x[7]=%ld x[999]=%ld "
              "x[500]=%ld, ||x||_1=%.0f, support=%zu\n",
              static_cast<long>(exact[42]), static_cast<long>(exact[7]),
              static_cast<long>(exact[999]), static_cast<long>(exact[500]),
              exact.NormP(1.0), static_cast<size_t>(exact.L0()));

  // Query() answers any sketch with the same tagged QueryResult the CLI
  // and the lps_serve wire protocol use.
  const lps::QueryResult s1 = lps::Query(*l1);
  std::printf("L1 sample : %s", s1.ToText().c_str());
  const lps::QueryResult s0 = lps::Query(*l0);
  std::printf("L0 sample : %s", s0.ToText().c_str());

  std::printf("sampler space: L1 %zu bits, L0 %zu bits (paper counter model)\n",
              l1->SpaceBits(), l0->SpaceBits());
  std::printf("note: the deleted item 500 can never be sampled.\n");
  return 0;
}
