// Sustained firehose ingestion with live queries: the epoch loop of the
// parallel ingestion runtime.
//
// A producer thread Push()es a continuous click stream into a
// ParallelPipeline (4 shards, one worker each; sealed batches flow
// through bounded rings while the producer keeps partitioning). Every
// epoch the loop calls MergeShards() — the quiesce barrier drains the
// rings, replicas 1..3 fold into replica 0 and reset — and then queries
// the merged state in place through the candidate-driven query engine:
// CsHeavyHitters::Query() walks its co-updated dyadic tree instead of
// scanning the universe, and LpSampler::Sample() descends its per-round
// trees, so the pause between epochs is microseconds even at n = 2^20.
// Ingestion resumes immediately after; replica 0 keeps accumulating, so
// each epoch's answers cover the whole stream so far.
//
// Build & run:  ./build/parallel_firehose
#include <cstdio>
#include <vector>

#include "src/core/lp_sampler.h"
#include "src/heavy/heavy_hitters.h"
#include "src/stream/generators.h"
#include "src/stream/parallel_pipeline.h"

int main() {
  const uint64_t n = 1 << 20;
  const int kShards = 4;
  const int kEpochs = 4;
  const uint64_t kNoisePerEpoch = 100000;  // background support per epoch

  // Replica sets: identical params + seeds across shards.
  lps::heavy::CsHeavyHitters::Params hh_params;
  hh_params.n = n;
  hh_params.p = 1.0;
  hh_params.phi = 0.05;
  hh_params.strict_turnstile = true;
  hh_params.seed = 7;
  std::vector<lps::heavy::CsHeavyHitters> hh;
  lps::core::LpSamplerParams l1_params;
  l1_params.n = n;
  l1_params.p = 1.0;
  l1_params.eps = 0.25;
  l1_params.repetitions = 8;
  l1_params.seed = 8;
  std::vector<lps::core::LpSampler> l1;
  for (int s = 0; s < kShards; ++s) {
    hh.emplace_back(hh_params);
    l1.emplace_back(l1_params);
  }

  lps::stream::ParallelPipeline::Options options;
  options.shards = kShards;
  options.threads = kShards;  // one worker per shard
  lps::stream::ParallelPipeline pipeline(options);
  std::vector<lps::LinearSketch*> hh_ptrs, l1_ptrs;
  for (int s = 0; s < kShards; ++s) {
    hh_ptrs.push_back(&hh[static_cast<size_t>(s)]);
    l1_ptrs.push_back(&l1[static_cast<size_t>(s)]);
  }
  pipeline.Add("heavy_hitters", hh_ptrs).Add("l1_sampler", l1_ptrs);
  std::printf("firehose: %d shards on %d workers, %d epochs, n = 2^20\n",
              pipeline.shards(), pipeline.threads(), kEpochs);

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    // Each epoch's slice of the firehose: the same 5 heavy clickers over
    // ~100k background updates (fixed workload seed, so the clickers'
    // L1 share stays above phi and every epoch's answer finds them; a
    // per-epoch seed would dilute each epoch's plants below phi —
    // correctly — and the demo would read as a failure).
    const auto slice =
        lps::stream::PlantedHeavyHitters(n, 5, 20000, kNoisePerEpoch,
                                         false, 100);
    for (const auto& u : slice) pipeline.Push(u);

    // Close the epoch: quiesce, fold replicas 1..k-1 into replica 0.
    pipeline.MergeShards();

    // Live queries against the merged replica — sub-linear, in place.
    const auto heavy = hh[0].Query();
    std::printf("epoch %d: %zu updates total, %zu heavy hitters:", epoch,
                pipeline.updates_driven(), heavy.size());
    for (uint64_t i : heavy) {
      std::printf(" %llu", static_cast<unsigned long long>(i));
    }
    auto sample = l1[0].Sample();
    if (sample.ok()) {
      std::printf("   L1 sample: %llu (%.1f)\n",
                  static_cast<unsigned long long>(sample.value().index),
                  sample.value().estimate);
    } else {
      std::printf("   L1 sample: FAIL this epoch\n");
    }
  }

  std::printf("%llu epochs merged, %zu updates ingested\n",
              static_cast<unsigned long long>(pipeline.epochs_merged()),
              pipeline.updates_driven());
  return 0;
}
