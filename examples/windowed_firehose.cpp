// Sliding-window queries over a live firehose: sample and count ONLY the
// most recent traffic, without re-ingesting or buffering the stream.
//
// A ParallelPipeline (4 shards, one worker each) consumes a click
// firehose in epochs. A WindowManager rides on replica 0: after every
// MergeShards() — the moment replica 0 holds the full prefix — the
// epoch boundary is sealed as a serialized checkpoint (SealEpoch). Any
// trailing run of epochs then materializes by SUBTRACTION:
// WindowSketch(w) = S(now) - S(expired prefix), O(sketch size),
// microseconds — while replica 0 keeps answering whole-stream queries
// as before. One stream, both horizons.
//
// Each epoch plants a different set of heavy clickers. The whole-stream
// heavy-hitter query progressively dilutes old plants below phi, while
// the last-epoch WINDOW query keeps finding the current epoch's
// clickers crisply — the sliding-window pitch in one run.
//
// The run self-checks the subtraction exactness claim: the windowed
// CountSketch state must be BIT-IDENTICAL to a sketch fed only the
// epoch's updates (integer-valued counters subtract exactly), and the
// windowed heavy-hitter set must equal the epoch-only set. Exits
// non-zero on any mismatch, so the CI examples smoke gates on it.
//
// Build & run:  ./build/windowed_firehose
#include <cstdio>
#include <vector>

#include "src/heavy/heavy_hitters.h"
#include "src/sketch/count_sketch.h"
#include "src/stream/generators.h"
#include "src/stream/parallel_pipeline.h"
#include "src/stream/window_manager.h"
#include "src/util/serialize.h"

namespace {

std::vector<uint64_t> SerializedState(const lps::LinearSketch& sketch) {
  lps::BitWriter writer;
  sketch.Serialize(&writer);
  return writer.words();
}

}  // namespace

int main() {
  const uint64_t n = 1 << 20;
  const int kShards = 4;
  const int kEpochs = 4;
  const uint64_t kNoisePerEpoch = 100000;

  lps::heavy::CsHeavyHitters::Params hh_params;
  hh_params.n = n;
  hh_params.p = 1.0;
  hh_params.phi = 0.05;
  hh_params.strict_turnstile = true;
  hh_params.seed = 7;
  std::vector<lps::heavy::CsHeavyHitters> hh;
  std::vector<lps::sketch::CountSketch> cs;
  for (int s = 0; s < kShards; ++s) {
    hh.emplace_back(hh_params);
    cs.emplace_back(9, 512, 8);
  }

  lps::stream::ParallelPipeline::Options options;
  options.shards = kShards;
  options.threads = kShards;
  lps::stream::ParallelPipeline pipeline(options);
  std::vector<lps::LinearSketch*> hh_ptrs, cs_ptrs;
  for (int s = 0; s < kShards; ++s) {
    hh_ptrs.push_back(&hh[static_cast<size_t>(s)]);
    cs_ptrs.push_back(&cs[static_cast<size_t>(s)]);
  }
  pipeline.Add("heavy_hitters", hh_ptrs).Add("count_sketch", cs_ptrs);

  // Window managers over the merge targets; checkpoints seal at epoch
  // boundaries (SealEpoch), so the interval here is just the owned-mode
  // default and never fires.
  lps::stream::WindowManager hh_windows(&hh[0], {});
  lps::stream::WindowManager cs_windows(&cs[0], {});

  std::printf("windowed firehose: %d shards on %d workers, %d epochs, "
              "n = 2^20\n",
              pipeline.shards(), pipeline.threads(), kEpochs);

  bool ok = true;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    // Every epoch a DIFFERENT clique of 5 heavy clickers (per-epoch
    // workload seed) — yesterday's heavies are today's noise.
    const auto slice = lps::stream::PlantedHeavyHitters(
        n, 5, 20000, kNoisePerEpoch, false,
        static_cast<uint64_t>(100 + epoch));
    for (const auto& u : slice) pipeline.Push(u);
    pipeline.MergeShards();
    hh_windows.SealEpoch(slice.size());
    cs_windows.SealEpoch(slice.size());

    // Whole-stream view: old plants dilute as epochs accumulate.
    const auto all_time = hh[0].Query();

    // Last-epoch view: subtraction materializes the window sketch.
    const auto window = hh_windows.WindowSketch(slice.size());
    auto* windowed_hh =
        dynamic_cast<lps::heavy::CsHeavyHitters*>(window.sketch.get());
    const auto recent = windowed_hh->Query();

    std::printf("epoch %d: %zu updates total | whole-stream heavies: %zu |"
                " window [%llu, %llu) heavies:",
                epoch, pipeline.updates_driven(), all_time.size(),
                static_cast<unsigned long long>(window.start),
                static_cast<unsigned long long>(window.start +
                                                window.length));
    for (uint64_t i : recent) {
      std::printf(" %llu", static_cast<unsigned long long>(i));
    }
    std::printf("\n");

    // Self-check 1: the windowed heavy-hitter set equals a from-scratch
    // sketch that saw only this epoch.
    lps::heavy::CsHeavyHitters epoch_only(hh_params);
    epoch_only.UpdateBatch(slice.data(), slice.size());
    if (recent != epoch_only.Query()) {
      std::fprintf(stderr,
                   "epoch %d: windowed heavy set != epoch-only heavy set\n",
                   epoch);
      ok = false;
    }

    // Self-check 2: exactness — the windowed CountSketch is bit-identical
    // to one fed only the epoch (integer counters subtract exactly).
    const auto cs_window = cs_windows.WindowSketch(slice.size());
    lps::sketch::CountSketch cs_epoch_only(9, 512, 8);
    cs_epoch_only.UpdateBatch(slice.data(), slice.size());
    if (SerializedState(*cs_window.sketch) !=
        SerializedState(cs_epoch_only)) {
      std::fprintf(stderr,
                   "epoch %d: windowed count-sketch state diverged\n",
                   epoch);
      ok = false;
    }
  }

  std::printf("%llu epochs merged, %zu updates ingested, checkpoint ring "
              "%.1f KiB x 2 structures%s\n",
              static_cast<unsigned long long>(pipeline.epochs_merged()),
              pipeline.updates_driven(),
              hh_windows.CheckpointBytes() / 1024.0,
              ok ? "" : "  [EXACTNESS CHECK FAILED]");
  return ok ? 0 : 1;
}
