// Click-fraud detection: finding duplicates in a click stream.
//
// The duplicates problem was first studied for detecting fraud in click
// streams (Metwally et al., cited as [21] in the paper): a publisher is
// paid per click, so the same client clicking an ad twice is a fraud
// signal. The stream of client IDs is far too long to store, and IDs can
// be spread over a huge space.
//
// This example runs Theorem 3's finder (guaranteed duplicates when the
// stream is longer than the ID space, by pigeonhole) and Theorem 4's
// finder on a *short* stream, where the absence of duplicates is certified
// exactly — the answer an auditor needs.
//
// Build & run:  ./build/examples/click_fraud
#include <cstdio>

#include "src/duplicates/duplicates.h"
#include "src/stream/generators.h"
#include "src/util/bits.h"

namespace {

void Banner(const char* text) { std::printf("\n--- %s ---\n", text); }

}  // namespace

int main() {
  const uint64_t num_clients = 100000;  // ID space [0, n)

  Banner("Scenario 1: busy day, stream longer than the ID space (Thm 3)");
  {
    // 100001 clicks from 100000 clients: some client clicked twice.
    const auto clicks = lps::stream::DuplicateStream(num_clients, 1, 17);
    lps::duplicates::DuplicateFinder finder(
        {num_clients, /*delta=*/0.05, /*repetitions=*/0, /*seed=*/4242});
    for (uint64_t client : clicks) finder.ProcessItem(client);
    auto fraud = finder.Find();
    if (fraud.ok()) {
      std::printf("double-clicker found: client %llu\n",
                  static_cast<unsigned long long>(fraud.value()));
    } else {
      std::printf("no duplicate found this run (probability <= delta)\n");
    }
    std::printf("memory: %zu bits vs %zu bits to store every ID seen\n",
                finder.SpaceBits(2 * lps::CeilLog2(num_clients)),
                static_cast<size_t>(clicks.size()) *
                    lps::CeilLog2(num_clients));
  }

  Banner("Scenario 2: audit of a short window (Thm 4, certified answer)");
  {
    // 99900 clicks (s = 100): duplicates are NOT guaranteed. The finder
    // certifies NO-DUPLICATE with probability 1 when the window is clean.
    const uint64_t s = 100;
    const auto clean = lps::stream::ShortStreamWithDuplicates(
        num_clients, s, /*num_duplicates=*/0, 23);
    lps::duplicates::SparseDuplicateFinder auditor(
        {num_clients, s, 0.05, 0, 777});
    for (uint64_t client : clean) auditor.ProcessItem(client);
    const auto outcome = auditor.Find();
    switch (outcome.kind) {
      case lps::duplicates::SparseDuplicateFinder::Kind::kNoDuplicate:
        std::printf("clean window CERTIFIED: no client clicked twice\n");
        break;
      case lps::duplicates::SparseDuplicateFinder::Kind::kDuplicate:
        std::printf("unexpected duplicate: client %llu\n",
                    static_cast<unsigned long long>(outcome.duplicate));
        break;
      case lps::duplicates::SparseDuplicateFinder::Kind::kFail:
        std::printf("FAIL\n");
        break;
    }

    // Same window with 3 fraudulent clients: exact identification.
    const auto dirty = lps::stream::ShortStreamWithDuplicates(
        num_clients, s, /*num_duplicates=*/3, 29);
    lps::duplicates::SparseDuplicateFinder auditor2(
        {num_clients, s, 0.05, 0, 778});
    for (uint64_t client : dirty) auditor2.ProcessItem(client);
    const auto outcome2 = auditor2.Find();
    if (outcome2.kind ==
        lps::duplicates::SparseDuplicateFinder::Kind::kDuplicate) {
      std::printf("fraudulent client identified%s: %llu\n",
                  outcome2.exact ? " (exactly, via sparse recovery)" : "",
                  static_cast<unsigned long long>(outcome2.duplicate));
    }
    std::printf("auditor memory: %zu bits (O(s log n + log^2 n))\n",
                auditor2.SpaceBits(2 * lps::CeilLog2(num_clients)));
  }

  Banner("Scenario 3: flash crowd, stream length n + s (Section 3)");
  {
    // 25% more clicks than clients: position sampling is cheaper than the
    // sketch when n/s < log n.
    const uint64_t s = num_clients / 4;
    const auto clicks = lps::stream::DuplicateStream(num_clients, s, 31);
    lps::duplicates::OversampledDuplicateFinder finder(
        {num_clients, s, 0.05, 0, 999, 0});
    std::printf("auto-selected strategy: %s\n",
                finder.strategy() == lps::duplicates::
                                         OversampledDuplicateFinder::Strategy::
                                             kPositionSampling
                    ? "position sampling (O((n/s) log n) bits)"
                    : "L1 sampler (O(log^2 n) bits)");
    for (uint64_t client : clicks) finder.ProcessItem(client);
    auto fraud = finder.Find();
    if (fraud.ok()) {
      std::printf("double-clicker found: client %llu\n",
                  static_cast<unsigned long long>(fraud.value()));
    } else {
      std::printf("no duplicate caught this run\n");
    }
  }
  return 0;
}
