#!/usr/bin/env python3
"""Docs gate: no dead relative links, and every fenced C++ example
compiles against the real headers.

Scope: README.md and docs/*.md.

Link check — every markdown link whose target is a relative path (not
http(s)/mailto/pure-#fragment) must resolve to a file or directory,
relative to the linking document's own directory. Fragments are stripped
before the existence check; anchor validity is not checked (header
renames are caught by review, missing FILES are what rot silently).

Snippet check — every fenced block tagged ```cpp is extracted into a
scratch translation unit and compiled with `$CXX -std=c++17
-fsyntax-only -I<repo>`:

  * `#include` lines are hoisted to the top, and `#include "src/lps.h"`
    is added when the snippet names anything from lps:: (so examples can
    omit the boilerplate the way prose wants to);
  * the snippet is first compiled at namespace scope (covers complete
    functions/classes and full programs); if that fails, it is retried
    wrapped in a uniquely named function body (covers statement-level
    examples). Only a snippet failing BOTH shapes fails the gate, and
    the namespace-scope diagnostics are what get printed;
  * a snippet whose first line contains `doc-snippet: no-compile`
    is skipped (for deliberately elided pseudo-code) — the skip is
    logged, never silent.

Blocks tagged anything else (```text, ```console, ```json, bare ```)
are prose, not code, and are ignored.

Exit codes: 0 pass, 1 dead link or non-compiling snippet, 2 bad setup.
"""

import os
import re
import subprocess
import sys
import tempfile

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\S*)\s*$")

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def log(msg):
    print(f"docs check: {msg}")


def find_docs():
    docs = []
    readme = os.path.join(REPO, "README.md")
    if os.path.exists(readme):
        docs.append(readme)
    docs_dir = os.path.join(REPO, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                docs.append(os.path.join(docs_dir, name))
    return docs


def check_links(path):
    """Returns a list of (lineno, target) dead links."""
    dead = []
    base = os.path.dirname(path)
    with open(path) as f:
        in_fence = False
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue  # code blocks may show illustrative paths
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = os.path.normpath(
                    os.path.join(base, target.split("#", 1)[0]))
                if not os.path.exists(resolved):
                    dead.append((lineno, target))
    return dead


def extract_snippets(path):
    """Returns a list of (first lineno inside the fence, code string)."""
    snippets = []
    with open(path) as f:
        lines = f.readlines()
    i = 0
    while i < len(lines):
        match = FENCE_RE.match(lines[i])
        if match and match.group(1) in ("cpp", "c++", "cxx"):
            body = []
            i += 1
            first = i + 1
            while i < len(lines) and not FENCE_RE.match(lines[i]):
                body.append(lines[i])
                i += 1
            snippets.append((first, "".join(body)))
        elif match:
            # Non-C++ fence: skip to its closing fence so C++-looking
            # lines inside (say, a console transcript) are not extracted.
            i += 1
            while i < len(lines) and not FENCE_RE.match(lines[i]):
                i += 1
        i += 1
    return snippets


def build_tus(code, index):
    """The candidate translation units for a snippet, preferred first."""
    includes = []
    rest = []
    for line in code.splitlines():
        if line.lstrip().startswith("#include"):
            includes.append(line.lstrip())
        else:
            rest.append(line)
    body = "\n".join(rest)
    if "lps" in code and '#include "src/lps.h"' not in includes:
        includes.insert(0, '#include "src/lps.h"')
    prefix = "\n".join(includes) + "\n\n"
    return [
        prefix + body + "\n",  # complete declarations / full program
        prefix + f"void lps_doc_snippet_{index}() {{\n{body}\n}}\n",
    ]


def try_compile(cxx, tu):
    """Returns (ok, stderr)."""
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".cc", delete=False) as f:
        f.write(tu)
        tu_path = f.name
    try:
        result = subprocess.run(
            [cxx, "-std=c++17", "-fsyntax-only", f"-I{REPO}", tu_path],
            capture_output=True, text=True)
        return result.returncode == 0, result.stderr
    finally:
        os.unlink(tu_path)


def compile_snippet(cxx, code, doc, lineno, index):
    first_line = code.splitlines()[0] if code.splitlines() else ""
    if "doc-snippet: no-compile" in first_line:
        log(f"{doc}:{lineno}: snippet skipped (marked no-compile)")
        return True
    first_stderr = None
    for tu in build_tus(code, index):
        ok, stderr = try_compile(cxx, tu)
        if ok:
            return True
        if first_stderr is None:
            first_stderr = stderr
    log(f"{doc}:{lineno}: snippet does NOT compile:")
    sys.stderr.write(first_stderr or "")
    return False


def main():
    cxx = os.environ.get("CXX", "c++")
    try:
        subprocess.run([cxx, "--version"], capture_output=True, check=True)
    except (OSError, subprocess.CalledProcessError):
        print(f"docs check: compiler '{cxx}' not runnable", file=sys.stderr)
        return 2

    docs = find_docs()
    if not docs:
        print("docs check: no documents found", file=sys.stderr)
        return 2

    failures = 0
    links = 0
    compiled = 0
    for path in docs:
        rel = os.path.relpath(path, REPO)
        dead = check_links(path)
        with open(path) as f:
            text = f.read()
        links += len([t for t in LINK_RE.findall(text)
                      if not t.startswith(("http://", "https://",
                                           "mailto:", "#"))])
        for lineno, target in dead:
            log(f"{rel}:{lineno}: dead link -> {target}")
            failures += 1
        for index, (lineno, code) in enumerate(extract_snippets(path)):
            if compile_snippet(cxx, code, rel, lineno, index):
                compiled += 1
            else:
                failures += 1

    if failures:
        print(f"docs check: FAIL ({failures} problem(s))", file=sys.stderr)
        return 1
    log(f"pass ({len(docs)} documents, {links} relative links resolved, "
        f"{compiled} snippets compiled)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
