#!/usr/bin/env python3
"""Bench-regression gate: diff a fresh BENCH_throughput.json (or, with
--serve, BENCH_serve.json) against the committed baseline and fail on a
>25% regression.

Compared metrics (the PR-to-PR trajectory the repo tracks):

  * query_latency scaling — per query family, the n=2^20 / n=2^12
    micros-per-call ratio. A ratio is machine-portable (both ends ran on
    the same box), so it is compared against ANY baseline; a >25% growth
    means a query path got asymptotically slower.
  * parallel_ingest scaling — per structure, the t=4 / t=1 items-per-sec
    ratio. Meaningful only with >= 4 real cores on BOTH sides, so it is
    compared only when both files report hardware_threads >= 4 and
    logged as skipped otherwise (the committed baseline may come from a
    small dev box; once a 4-core CI artifact is committed the check
    arms itself).
  * absolute throughput/latency — only when baseline and current ran on
    the same hardware_threads count AND the same quick mode AND the same
    dispatched kernel_backend (an LPS_KERNELS=scalar run against an AVX2
    baseline differs by the SIMD factor, not by a code change); cross-
    machine absolute numbers are noise, and pretending otherwise would
    make the gate cry wolf.

--serve swaps the metric set for the lps_serve load-generator report:

  * tenant-count scaling — the max-tenants / 1-tenant aggregate
    ingest_rps ratio (a machine-portable ratio: a drop means the tenant
    registry serialized what used to run concurrently).
  * absolute rps and p99 latency per tenant count — same
    hardware_threads + quick mode only, like the library benches.

--persist swaps the metric set for the durability bench
(BENCH_persist.json):

  * delta-compression ratios — deterministic codec-vs-workload numbers,
    machine-portable, compared against any baseline; the monitoring
    regime (lp_sampler hot set) additionally carries a hard >= 4x floor
    (the same floor bench_persist asserts at run time).
  * spill ingest throughput, resident/rehydrate window latency, and
    cold-boot open/restore times — absolute timings, same
    hardware_threads + quick mode only.

--dist swaps the metric set for the distributed aggregation tier
(BENCH_distributed.json):

  * solo bit-identity — every row must report bit_identical (the
    linearity contract: the folded global state equals a solo sketch
    byte for byte). Deterministic, checked on any runner.
  * worker scaling — the workers=4 / workers=1 aggregate ingest ratio.
    Needs >= 4 real cores on BOTH sides (a 1-core box timeslices the
    worker processes), logged as skipped otherwise.
  * absolute ingest throughput and per-epoch fold latency — same
    hardware_threads + quick mode + process topology (forked vs
    threaded) only.

--io swaps the metric set for the async ingest front-end
(BENCH_io.json):

  * async-vs-memory bit-identity — the current run must report the
    file-fed sketch state byte-equal to in-memory ingest. Deterministic,
    checked on any runner.
  * overlap ratios — per format, speedup_vs_naive and
    overlap_efficiency (both are same-run ratios, so machine-portable),
    but only when BOTH sides ran on >= 4 hardware threads: a 1-core box
    timeslices the prefetch/decode/ingest stages and the ratio is
    scheduler noise.
  * absolute decode MB/s and ingest wall times — same hardware_threads
    + quick mode only.

Per the repo's bench-gating convention every skip is LOGGED, never
silent, and the whole gate is skipped (exit 0) under sanitizer
instrumentation (LPS_BENCH_SANITIZED env) or on runners with < 4 cores.

Exit codes: 0 pass/skip, 1 regression, 2 bad invocation or input.
"""

import argparse
import json
import os
import sys

QUERY_FAMILIES = [
    ("lp_sampler.Sample", "[n=2^12,v=1]", "[n=2^20,v=1]"),
    ("cs_heavy_hitters.Query", "[n=2^12]", "[n=2^20]"),
]
PARALLEL_STRUCTURES = ["count_sketch[17x96]", "lp_sampler[v=8]"]


def log(msg):
    print(f"bench compare: {msg}")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def latency_of(data, name):
    for row in data.get("query_latency", []):
        if row.get("name") == name:
            return row.get("micros_per_call")
    return None


def parallel_ips(data, name, threads):
    for row in data.get("parallel_ingest", []):
        if row.get("name") == name and row.get("threads") == threads:
            return row.get("items_per_sec")
    return None


def query_ratio(data, family, small, large):
    lo = latency_of(data, family + small)
    hi = latency_of(data, family + large)
    if not lo or not hi or lo <= 0:
        return None
    return hi / lo


def scaling_ratio(data, name):
    t1 = parallel_ips(data, name, 1)
    t4 = parallel_ips(data, name, 4)
    if not t1 or not t4 or t1 <= 0:
        return None
    return t4 / t1


def serve_row(data, tenants):
    for row in data.get("serve_scaling", []):
        if row.get("tenants") == tenants:
            return row
    return None


def serve_tenant_ratio(data):
    """max-tenants / 1-tenant aggregate ingest rps — portable."""
    rows = data.get("serve_scaling", [])
    if not rows:
        return None
    solo = serve_row(data, 1)
    peak = max(rows, key=lambda r: r.get("tenants", 0))
    if not solo or peak.get("tenants", 0) <= 1:
        return None
    lo = solo.get("ingest_rps")
    hi = peak.get("ingest_rps")
    if not lo or not hi or lo <= 0:
        return None
    return hi / lo


def compare_serve(base, cur, allowed, max_regress):
    """The --serve metric set; returns (compared, failed)."""
    failed = []
    compared = 0

    b = serve_tenant_ratio(base)
    c = serve_tenant_ratio(cur)
    if b is None or c is None:
        log("serve tenant scaling: skipped (missing rows in "
            f"{'baseline' if b is None else 'current'})")
    else:
        compared += 1
        verdict = "ok" if c >= b * (1.0 - max_regress) else "REGRESSED"
        log(f"serve tenant scaling: max/1-tenant ingest rps ratio {c:.2f} "
            f"vs baseline {b:.2f} ({verdict})")
        if c < b * (1.0 - max_regress):
            failed.append("serve tenant scaling")

    if (base.get("hardware_threads") != cur.get("hardware_threads")
            or base.get("quick") != cur.get("quick")):
        log("serve absolute metrics: skipped (hardware_threads/quick "
            "mismatch — ratios only)")
        return compared, failed
    for brow in base.get("serve_scaling", []):
        tenants = brow.get("tenants")
        crow = serve_row(cur, tenants)
        if crow is None:
            log(f"serve tenants={tenants}: skipped (missing in current)")
            continue
        for metric, better_high in (("ingest_rps", True),
                                    ("query_rps", True),
                                    ("ingest_p99_us", False),
                                    ("query_p99_us", False)):
            b = brow.get(metric)
            c = crow.get(metric)
            if not b or not c:
                continue
            compared += 1
            regressed = (c < b * (1.0 - max_regress) if better_high
                         else c > b * allowed)
            verdict = "REGRESSED" if regressed else "ok"
            log(f"serve tenants={tenants} {metric}: {c:.1f} vs baseline "
                f"{b:.1f} ({verdict})")
            if regressed:
                failed.append(f"serve tenants={tenants} {metric}")
    return compared, failed


HOT_SET_WORKLOAD = "lp_sampler[v=8]/hot_set"
MIN_HOT_SET_RATIO = 4.0


def named_row(data, section, name):
    for row in data.get(section, []):
        if row.get("name") == name:
            return row
    return None


def compare_persist(base, cur, allowed, max_regress):
    """The --persist metric set; returns (compared, failed)."""
    failed = []
    compared = 0

    # Compression ratios: deterministic (codec + workload, no timing),
    # so they compare against ANY baseline.
    for brow in base.get("delta_compression", []):
        name = brow.get("name")
        crow = named_row(cur, "delta_compression", name)
        if crow is None:
            log(f"compression {name}: skipped (missing in current)")
            continue
        b = brow.get("ratio")
        c = crow.get("ratio")
        if not b or not c or b <= 0:
            continue
        compared += 1
        regressed = c < b * (1.0 - max_regress)
        verdict = "REGRESSED" if regressed else "ok"
        log(f"compression {name}: {c:.2f}x vs baseline {b:.2f}x ({verdict})")
        if regressed:
            failed.append(f"compression {name}")

    hot = named_row(cur, "delta_compression", HOT_SET_WORKLOAD)
    if hot is None:
        log(f"compression floor: skipped ({HOT_SET_WORKLOAD} missing)")
    else:
        compared += 1
        ratio = hot.get("ratio") or 0
        verdict = "ok" if ratio >= MIN_HOT_SET_RATIO else "REGRESSED"
        log(f"compression floor: {HOT_SET_WORKLOAD} {ratio:.2f}x "
            f"(floor {MIN_HOT_SET_RATIO:.2f}x, {verdict})")
        if ratio < MIN_HOT_SET_RATIO:
            failed.append("compression floor")

    if (base.get("hardware_threads") != cur.get("hardware_threads")
            or base.get("quick") != cur.get("quick")):
        log("persist absolute metrics: skipped (hardware_threads/quick "
            "mismatch — ratios only)")
        return compared, failed

    for brow in base.get("spill", []):
        name = brow.get("name")
        crow = named_row(cur, "spill", name)
        if crow is None:
            log(f"spill {name}: skipped (missing in current)")
            continue
        for metric, better_high in (("ram_items_per_sec", True),
                                    ("spill_items_per_sec", True),
                                    ("resident_micros", False),
                                    ("rehydrate_micros", False)):
            b = brow.get(metric)
            c = crow.get(metric)
            if not b or not c:
                continue
            compared += 1
            regressed = (c < b * (1.0 - max_regress) if better_high
                         else c > b * allowed)
            verdict = "REGRESSED" if regressed else "ok"
            log(f"spill {name} {metric}: {c:.1f} vs baseline {b:.1f} "
                f"({verdict})")
            if regressed:
                failed.append(f"spill {name} {metric}")

    for brow in base.get("recovery", []):
        tenants = brow.get("tenants")
        crow = None
        for row in cur.get("recovery", []):
            if row.get("tenants") == tenants:
                crow = row
        if crow is None:
            log(f"recovery tenants={tenants}: skipped (missing in current)")
            continue
        for metric in ("open_millis", "restore_millis"):
            b = brow.get(metric)
            c = crow.get(metric)
            if not b or not c:
                continue
            compared += 1
            regressed = c > b * allowed
            verdict = "REGRESSED" if regressed else "ok"
            log(f"recovery tenants={tenants} {metric}: {c:.3f} vs baseline "
                f"{b:.3f} ({verdict})")
            if regressed:
                failed.append(f"recovery tenants={tenants} {metric}")
    return compared, failed


def dist_row(data, workers):
    for row in data.get("rows", []):
        if row.get("workers") == workers:
            return row
    return None


def dist_scaling(data):
    """workers=4 / workers=1 aggregate ingest ratio."""
    w1 = dist_row(data, 1)
    w4 = dist_row(data, 4)
    if not w1 or not w4:
        return None
    lo = w1.get("updates_per_sec")
    hi = w4.get("updates_per_sec")
    if not lo or not hi or lo <= 0:
        return None
    return hi / lo


def compare_dist(base, cur, allowed, max_regress):
    """The --dist metric set; returns (compared, failed)."""
    failed = []
    compared = 0

    # Bit-identity is deterministic (linearity of the sketches, no
    # timing), so it holds on any runner, any core count.
    for crow in cur.get("rows", []):
        workers = crow.get("workers")
        compared += 1
        if crow.get("bit_identical"):
            log(f"dist workers={workers}: folded state bit-identical to "
                "solo (ok)")
        else:
            log(f"dist workers={workers}: folded state DIVERGED from solo")
            failed.append(f"dist workers={workers} bit_identity")

    cur_threads = cur.get("hardware_threads", 0)
    base_threads = base.get("hardware_threads", 0)
    if cur_threads < 4 or base_threads < 4:
        side = "current" if cur_threads < 4 else "baseline"
        threads = cur_threads if cur_threads < 4 else base_threads
        log(f"dist worker scaling: skipped ({side} ran on {threads} "
            "hardware threads < 4 — worker processes timeslice one core)")
    else:
        b = dist_scaling(base)
        c = dist_scaling(cur)
        if b is None or c is None:
            log("dist worker scaling: skipped (missing rows in "
                f"{'baseline' if b is None else 'current'})")
        else:
            compared += 1
            regressed = c < b * (1.0 - max_regress)
            verdict = "REGRESSED" if regressed else "ok"
            log(f"dist worker scaling: w4/w1 ingest ratio {c:.2f} vs "
                f"baseline {b:.2f} ({verdict})")
            if regressed:
                failed.append("dist worker scaling")

    if (base.get("hardware_threads") != cur.get("hardware_threads")
            or base.get("quick") != cur.get("quick")
            or base.get("forked_processes") != cur.get("forked_processes")):
        log("dist absolute metrics: skipped (hardware_threads/quick/"
            "topology mismatch — deterministic checks only)")
        return compared, failed
    for brow in base.get("rows", []):
        workers = brow.get("workers")
        crow = dist_row(cur, workers)
        if crow is None:
            log(f"dist workers={workers}: skipped (missing in current)")
            continue
        for metric, better_high in (("updates_per_sec", True),
                                    ("fold_micros_per_epoch", False)):
            b = brow.get(metric)
            c = crow.get(metric)
            if not b or not c:
                continue
            compared += 1
            regressed = (c < b * (1.0 - max_regress) if better_high
                         else c > b * allowed)
            verdict = "REGRESSED" if regressed else "ok"
            log(f"dist workers={workers} {metric}: {c:.1f} vs baseline "
                f"{b:.1f} ({verdict})")
            if regressed:
                failed.append(f"dist workers={workers} {metric}")
    return compared, failed


def compare_io(base, cur, allowed, max_regress):
    """The --io metric set; returns (compared, failed)."""
    failed = []
    compared = 0

    # Bit-identity is the async front-end's contract (sink sees every
    # update once, in order; chunk boundaries are the pipeline's own) —
    # deterministic, so it holds on any runner.
    compared += 1
    if cur.get("bit_identical"):
        log("io: async file-fed state bit-identical to in-memory (ok)")
    else:
        log("io: async file-fed state DIVERGED from in-memory ingest")
        failed.append("io bit_identity")

    cur_threads = cur.get("hardware_threads", 0)
    base_threads = base.get("hardware_threads", 0)
    if cur_threads < 4 or base_threads < 4:
        side = "current" if cur_threads < 4 else "baseline"
        threads = cur_threads if cur_threads < 4 else base_threads
        log(f"io overlap ratios: skipped ({side} ran on {threads} hardware "
            "threads < 4 — the pipeline stages timeslice one core)")
    else:
        for brow in base.get("overlap", []):
            fmt = brow.get("format")
            crow = next(
                (r for r in cur.get("overlap", []) if r.get("format") == fmt),
                None)
            if crow is None:
                log(f"io overlap {fmt}: skipped (missing in current)")
                continue
            for metric in ("speedup_vs_naive", "overlap_efficiency"):
                b = brow.get(metric)
                c = crow.get(metric)
                if not b or not c or b <= 0:
                    continue
                compared += 1
                regressed = c < b * (1.0 - max_regress)
                verdict = "REGRESSED" if regressed else "ok"
                log(f"io overlap {fmt} {metric}: {c:.2f} vs baseline "
                    f"{b:.2f} ({verdict})")
                if regressed:
                    failed.append(f"io overlap {fmt} {metric}")

    if (base.get("hardware_threads") != cur.get("hardware_threads")
            or base.get("quick") != cur.get("quick")):
        log("io absolute metrics: skipped (hardware_threads/quick "
            "mismatch — deterministic checks and ratios only)")
        return compared, failed
    for brow in base.get("decode", []):
        fmt = brow.get("format")
        crow = next(
            (r for r in cur.get("decode", []) if r.get("format") == fmt),
            None)
        if crow is None:
            log(f"io decode {fmt}: skipped (missing in current)")
            continue
        for metric in ("mb_per_sec", "mitem_per_sec"):
            b = brow.get(metric)
            c = crow.get(metric)
            if not b or not c:
                continue
            compared += 1
            regressed = c < b * (1.0 - max_regress)
            verdict = "REGRESSED" if regressed else "ok"
            log(f"io decode {fmt} {metric}: {c:.1f} vs baseline {b:.1f} "
                f"({verdict})")
            if regressed:
                failed.append(f"io decode {fmt} {metric}")
    for brow in base.get("overlap", []):
        fmt = brow.get("format")
        crow = next(
            (r for r in cur.get("overlap", []) if r.get("format") == fmt),
            None)
        if crow is None:
            continue
        for metric in ("async_seconds",):
            b = brow.get(metric)
            c = crow.get(metric)
            if not b or not c:
                continue
            compared += 1
            regressed = c > b * allowed
            verdict = "REGRESSED" if regressed else "ok"
            log(f"io overlap {fmt} {metric}: {c:.4f} vs baseline {b:.4f} "
                f"({verdict})")
            if regressed:
                failed.append(f"io overlap {fmt} {metric}")
    return compared, failed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_throughput.json")
    parser.add_argument("current", help="freshly produced BENCH_throughput.json")
    parser.add_argument("--max-regress", type=float, default=0.25,
                        help="fractional regression that fails the gate")
    parser.add_argument("--serve", action="store_true",
                        help="compare BENCH_serve.json files (lps_serve "
                        "load-generator report) instead of the library bench")
    parser.add_argument("--persist", action="store_true",
                        help="compare BENCH_persist.json files (durability "
                        "bench: compression, spill, cold-boot recovery)")
    parser.add_argument("--dist", action="store_true",
                        help="compare BENCH_distributed.json files "
                        "(distributed tier: bit-identity, worker scaling, "
                        "fold latency)")
    parser.add_argument("--io", action="store_true",
                        help="compare BENCH_io.json files (async ingest "
                        "front-end: bit-identity, overlap ratios, decode "
                        "throughput)")
    args = parser.parse_args()
    if args.serve + args.persist + args.dist + args.io > 1:
        print("bench compare: --serve, --persist, --dist, and --io are "
              "mutually exclusive", file=sys.stderr)
        return 2

    env = os.environ.get("LPS_BENCH_SANITIZED", "")
    if env and env != "0":
        log("skipped (LPS_BENCH_SANITIZED set: sanitizer instrumentation "
            "distorts timing)")
        return 0

    base = load(args.baseline)
    cur = load(args.current)
    cur_threads = cur.get("hardware_threads", 0)
    base_threads = base.get("hardware_threads", 0)
    # The persist, dist, and io metric sets lead with deterministic
    # checks (compression ratios, fold/async bit-identity), which any
    # runner can verify; their timing metrics are separately gated
    # inside the compare functions.
    if cur_threads < 4 and not (args.persist or args.dist or args.io):
        log(f"skipped ({cur_threads} hardware threads < 4: scaling is not "
            "observable on this runner)")
        return 0

    allowed = 1.0 + args.max_regress

    if args.serve or args.persist or args.dist or args.io:
        mode = ("serve" if args.serve else "persist" if args.persist
                else "dist" if args.dist else "io")
        compare = (compare_serve if args.serve
                   else compare_persist if args.persist
                   else compare_dist if args.dist else compare_io)
        compared, failed = compare(base, cur, allowed, args.max_regress)
        if failed:
            print(f"bench compare: FAIL — >{args.max_regress:.0%} regression "
                  "in: " + ", ".join(failed), file=sys.stderr)
            return 1
        log(f"pass ({compared} {mode} metrics within {args.max_regress:.0%} "
            "of baseline)")
        return 0

    failed = []
    compared = 0

    # Query-latency scaling ratios: portable across machines.
    for family, small, large in QUERY_FAMILIES:
        b = query_ratio(base, family, small, large)
        c = query_ratio(cur, family, small, large)
        if b is None or c is None:
            log(f"{family}: skipped (missing rows in "
                f"{'baseline' if b is None else 'current'})")
            continue
        compared += 1
        verdict = "ok" if c <= b * allowed else "REGRESSED"
        log(f"{family}: 2^20/2^12 latency ratio {c:.2f} vs baseline "
            f"{b:.2f} ({verdict})")
        if c > b * allowed:
            failed.append(family)

    # Parallel scaling ratios: need real cores on both sides.
    if base_threads < 4:
        log(f"parallel_ingest: skipped (baseline measured on "
            f"{base_threads} hardware threads — commit a >=4-core bench "
            "artifact to arm this check)")
    else:
        for name in PARALLEL_STRUCTURES:
            b = scaling_ratio(base, name)
            c = scaling_ratio(cur, name)
            if b is None or c is None:
                log(f"parallel_ingest {name}: skipped (missing rows)")
                continue
            compared += 1
            verdict = "ok" if c >= b * (1.0 - args.max_regress) else "REGRESSED"
            log(f"parallel_ingest {name}: t4/t1 scaling {c:.2f}x vs "
                f"baseline {b:.2f}x ({verdict})")
            if c < b * (1.0 - args.max_regress):
                failed.append(f"parallel_ingest {name}")

    # Absolute numbers: same machine shape, same mode, and the same
    # dispatched kernel backend only. A scalar-forced (or SSE4-dispatched)
    # run is a different machine as far as absolute throughput is
    # concerned — comparing it against an AVX2 baseline would report the
    # backend delta as a code regression.
    base_backend = base.get("kernel_backend", "unknown")
    cur_backend = cur.get("kernel_backend", "unknown")
    if base_threads != cur_threads or base.get("quick") != cur.get("quick"):
        log("absolute metrics: skipped (baseline hardware_threads="
            f"{base_threads}/quick={base.get('quick')} vs current "
            f"{cur_threads}/quick={cur.get('quick')} — ratios only)")
    elif base_backend != cur_backend:
        log("absolute metrics: refused (baseline ran on kernel_backend="
            f"{base_backend}, current on {cur_backend} — absolute "
            "throughput from different SIMD backends is not comparable; "
            "scaling ratios above were still checked)")
    else:
        for name in PARALLEL_STRUCTURES:
            for threads in (1, 4):
                b = parallel_ips(base, name, threads)
                c = parallel_ips(cur, name, threads)
                if not b or not c:
                    continue
                compared += 1
                verdict = ("ok" if c >= b * (1.0 - args.max_regress)
                           else "REGRESSED")
                log(f"parallel_ingest {name} t={threads}: {c / 1e6:.2f} "
                    f"Mitem/s vs baseline {b / 1e6:.2f} ({verdict})")
                if c < b * (1.0 - args.max_regress):
                    failed.append(f"parallel_ingest {name} t={threads}")

    if failed:
        print(f"bench compare: FAIL — >{args.max_regress:.0%} regression in: "
              + ", ".join(failed), file=sys.stderr)
        return 1
    log(f"pass ({compared} metrics within {args.max_regress:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
